//! # avis-hinj
//!
//! The Hardware-fault INJection interface of the Avis reproduction — the
//! analogue of the paper's `libhinj` library (§V.B).
//!
//! `libhinj` sits between the model checker and the UAV firmware:
//!
//! 1. every instrumented sensor-driver `read()` asks the injector whether
//!    the read should fail (a *clean failure*: the instance stops
//!    communicating and the driver reports it failed, permanently for the
//!    rest of the run);
//! 2. the firmware's set-mode routine reports every operating-mode change
//!    through [`FaultInjector::report_mode`], which is how SABRE learns
//!    where the mode transitions are;
//! 3. the injector records everything it did (injections, mode
//!    transitions) so a bug-triggering scenario can be replayed.
//!
//! In the paper this interface is an RPC between the C-instrumented
//! firmware and the checker process; here both live in one process, so the
//! interface is a [`SharedInjector`] handle (an `Arc<Mutex<_>>`) held by
//! both the firmware's sensor frontend and the experiment runner.
//!
//! # Example
//!
//! ```
//! use avis_hinj::{FaultInjector, FaultPlan, FaultSpec, ModeCode};
//! use avis_sim::{SensorInstance, SensorKind};
//!
//! let gps0 = SensorInstance::new(SensorKind::Gps, 0);
//! let plan = FaultPlan::from_specs(vec![FaultSpec::new(gps0, 2.5)]);
//! let mut injector = FaultInjector::new(plan);
//!
//! assert!(!injector.should_fail(gps0, 1.0));
//! assert!(injector.should_fail(gps0, 2.5));
//! // Clean failures are permanent for the rest of the run.
//! assert!(injector.should_fail(gps0, 100.0));
//! injector.report_mode(0.0, ModeCode(3));
//! assert_eq!(injector.mode_transitions().len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod link;

pub use link::{
    FaultyLink, LinkDelta, LinkDirection, LinkFaultKind, LinkFaultPlan, LinkFaultSpec,
    LinkFaultStats, LinkSnapshot, StormCommand,
};

use avis_sim::codec::{ByteReader, ByteWriter, CodecResult};
use avis_sim::{ChunkSink, ChunkSource, CowDelta, CowVec, SensorInstance};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An opaque operating-mode code reported by the firmware.
///
/// The firmware maps its mode enumeration onto these codes; the injector
/// does not interpret them, it only records transitions between them —
/// exactly the information `hinj_update_mode()` carries in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModeCode(pub u32);

impl fmt::Display for ModeCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mode#{}", self.0)
    }
}

/// A single clean sensor failure: `instance` stops communicating at `time`
/// (seconds of simulation time) and never recovers within the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// The sensor instance that fails.
    pub instance: SensorInstance,
    /// Simulation time at which the failure begins (s).
    pub time: f64,
}

impl FaultSpec {
    /// Creates a fault specification.
    pub fn new(instance: SensorInstance, time: f64) -> Self {
        FaultSpec { instance, time }
    }

    /// Serialises the spec (bit-exact) for the persistent store.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.instance.encode(w);
        w.f64(self.time);
    }

    /// Restores a spec serialised by [`FaultSpec::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<FaultSpec> {
        Ok(FaultSpec {
            instance: SensorInstance::decode(r)?,
            time: r.f64()?,
        })
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{:.3}s", self.instance, self.time)
    }
}

/// The complete set of failures to inject during one test run.
///
/// This is the `failures` set manipulated by Algorithm 1 (SABRE): a set of
/// `(sensor instance, timestamp)` pairs. At most one failure per instance
/// is meaningful (the fault model is permanent clean failure), so the plan
/// keeps the earliest start time per instance.
///
/// Since PR 6 a plan also carries an optional [`LinkFaultPlan`]: protocol
/// faults on the GCS ↔ vehicle link, injected by the same scenario. The
/// two surfaces are orthogonal — sensor faults go through the injector's
/// `should_fail` path, link faults through the [`FaultyLink`] shim — but
/// they travel in one plan so the campaign engine's de-duplication,
/// prefix dispatch and snapshot forking treat a scenario as one unit.
///
/// Plans serialise as a list of [`FaultSpec`]s (so they can be embedded in
/// JSON bug reports) and deserialise back through [`FaultPlan::from_specs`];
/// when link faults are present the serialised form is a struct carrying
/// both lists, and both forms deserialise.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(from = "PlanRepr", into = "PlanRepr")]
pub struct FaultPlan {
    faults: BTreeMap<SensorInstance, f64>,
    link: LinkFaultPlan,
}

/// The serialised shape of a [`FaultPlan`]: the historical bare list of
/// sensor specs, or (once link faults are involved) a struct with both
/// fault surfaces.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(untagged)]
enum PlanRepr {
    /// Pre-PR-6 form: a bare list of sensor fault specs.
    Specs(Vec<FaultSpec>),
    /// Full form: sensor and link fault specs.
    Full {
        #[serde(default)]
        faults: Vec<FaultSpec>,
        #[serde(default)]
        link: Vec<LinkFaultSpec>,
    },
}

impl From<PlanRepr> for FaultPlan {
    fn from(repr: PlanRepr) -> Self {
        match repr {
            PlanRepr::Specs(specs) => FaultPlan::from_specs(specs),
            PlanRepr::Full { faults, link } => {
                let mut plan = FaultPlan::from_specs(faults);
                plan.link = LinkFaultPlan::from_specs(link);
                plan
            }
        }
    }
}

impl From<FaultPlan> for PlanRepr {
    fn from(plan: FaultPlan) -> Self {
        if plan.link.is_empty() {
            // Keep the historical wire form when no link faults are set,
            // so sensor-only reports stay byte-compatible.
            PlanRepr::Specs(plan.specs().collect())
        } else {
            PlanRepr::Full {
                faults: plan.specs().collect(),
                link: plan.link.specs().to_vec(),
            }
        }
    }
}

impl From<Vec<FaultSpec>> for FaultPlan {
    fn from(specs: Vec<FaultSpec>) -> Self {
        FaultPlan::from_specs(specs)
    }
}

impl From<FaultPlan> for Vec<FaultSpec> {
    fn from(plan: FaultPlan) -> Self {
        plan.specs().collect()
    }
}

impl FaultPlan {
    /// An empty plan: the fault-free golden/profiling run.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from fault specifications, keeping the earliest start
    /// time when an instance appears more than once.
    pub fn from_specs<I: IntoIterator<Item = FaultSpec>>(specs: I) -> Self {
        let mut plan = FaultPlan::default();
        for spec in specs {
            plan.add(spec);
        }
        plan
    }

    /// Adds a failure to the plan. If the instance is already scheduled to
    /// fail, the earlier start time wins (a sensor cannot fail twice).
    pub fn add(&mut self, spec: FaultSpec) {
        self.faults
            .entry(spec.instance)
            .and_modify(|t| *t = t.min(spec.time))
            .or_insert(spec.time);
    }

    /// Returns a new plan equal to `self` plus the given failure.
    pub fn with(&self, spec: FaultSpec) -> Self {
        let mut next = self.clone();
        next.add(spec);
        next
    }

    /// Returns `true` if no failures are scheduled on either surface —
    /// neither sensor faults nor link faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.link.is_empty()
    }

    /// Number of scheduled sensor failures (link faults are counted by
    /// [`LinkFaultPlan::len`] on [`FaultPlan::link_plan`]).
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The protocol faults carried by this plan (empty by default).
    pub fn link_plan(&self) -> &LinkFaultPlan {
        &self.link
    }

    /// Adds a protocol fault to the plan.
    pub fn add_link(&mut self, spec: LinkFaultSpec) {
        self.link.add(spec);
    }

    /// Returns a new plan equal to `self` plus the given protocol fault.
    pub fn with_link(&self, spec: LinkFaultSpec) -> Self {
        let mut next = self.clone();
        next.add_link(spec);
        next
    }

    /// Replaces the plan's protocol faults wholesale.
    pub fn set_link_plan(&mut self, link: LinkFaultPlan) {
        self.link = link;
    }

    /// Merges every protocol fault of `link` into this plan's link plan.
    pub fn merge_link(&mut self, link: &LinkFaultPlan) {
        self.link.merge(link);
    }

    /// The scheduled failure start time for an instance, if any.
    pub fn failure_time(&self, instance: SensorInstance) -> Option<f64> {
        self.faults.get(&instance).copied()
    }

    /// Iterates over the scheduled failures in instance order.
    pub fn specs(&self) -> impl Iterator<Item = FaultSpec> + '_ {
        self.faults
            .iter()
            .map(|(&instance, &time)| FaultSpec { instance, time })
    }

    /// Returns `true` if `instance` has failed by `time` under this plan.
    pub fn is_failed(&self, instance: SensorInstance, time: f64) -> bool {
        self.failure_time(instance).is_some_and(|t| time >= t)
    }

    /// Serialises the plan for the persistent store: the sensor specs in
    /// instance order plus the link specs, both reconstructible through
    /// the plan builders.
    pub fn encode(&self, w: &mut ByteWriter) {
        let specs: Vec<FaultSpec> = self.specs().collect();
        w.seq(&specs, |w, s| s.encode(w));
        w.seq(self.link.specs(), |w, s| s.encode(w));
    }

    /// Restores a plan serialised by [`FaultPlan::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<FaultPlan> {
        let specs = r.seq(FaultSpec::decode)?;
        let link = r.seq(LinkFaultSpec::decode)?;
        let mut plan = FaultPlan::from_specs(specs);
        plan.set_link_plan(LinkFaultPlan::from_specs(link));
        Ok(plan)
    }

    /// The largest plan contained in both `self` and `other`: the sensor
    /// faults scheduled at the *same* time on the *same* instance in both
    /// plans, plus the link faults present in both. Folding this over a
    /// set of sibling plans yields their shared injection prefix — the
    /// portion of the campaign schedule every sibling executes
    /// identically, which is what lockstep batching runs once.
    pub fn intersection(&self, other: &FaultPlan) -> FaultPlan {
        let mut common = FaultPlan::default();
        for (&instance, &time) in &self.faults {
            if other.faults.get(&instance) == Some(&time) {
                common.faults.insert(instance, time);
            }
        }
        for spec in self.link.specs() {
            if other.link.specs().contains(spec) {
                common.link.add(*spec);
            }
        }
        common
    }

    /// The earliest time at which this plan's behaviour can depart from
    /// `base` (typically the intersection of a sibling set): the minimum
    /// start time over sensor faults absent from `base` or scheduled at a
    /// different time, and link faults absent from `base`. Returns `None`
    /// when the plan never diverges (it is contained in `base`), i.e. a
    /// lockstep lane for this plan can ride its leader to the end.
    pub fn first_divergence_from(&self, base: &FaultPlan) -> Option<f64> {
        let sensor = self
            .faults
            .iter()
            .filter(|(instance, time)| base.faults.get(instance) != Some(time))
            .map(|(_, &time)| time);
        let link = self
            .link
            .specs()
            .iter()
            .filter(|spec| !base.link.specs().contains(spec))
            .map(|spec| spec.time);
        sensor.chain(link).fold(None, |acc: Option<f64>, t| {
            Some(acc.map_or(t, |a| a.min(t)))
        })
    }

    /// A canonical, order-independent key for de-duplicating plans (the
    /// hash-set of explored scenarios in §V.B.2). Times are quantised to
    /// milliseconds so replay jitter does not create spurious new plans.
    pub fn canonical_key(&self) -> String {
        let mut parts: Vec<String> = self
            .specs()
            .map(|s| {
                format!(
                    "{}:{}:{}",
                    s.instance.kind.name(),
                    s.instance.index,
                    (s.time * 1000.0).round() as i64
                )
            })
            .collect();
        parts.extend(self.link.specs().iter().map(|s| s.canonical_part()));
        parts.sort();
        parts.join("|")
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("(no faults)");
        }
        let mut parts: Vec<String> = self.specs().map(|s| s.to_string()).collect();
        parts.extend(self.link.specs().iter().map(|s| s.to_string()));
        f.write_str(&parts.join(", "))
    }
}

/// A record of one injected failure actually delivered to a driver read.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// The failed instance.
    pub instance: SensorInstance,
    /// The time of the first failed read delivered to the firmware (s).
    pub first_failed_read: f64,
}

/// A record of one operating-mode transition reported by the firmware.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModeTransitionRecord {
    /// Simulation time of the transition (s).
    pub time: f64,
    /// Mode before the transition, if any mode had been reported before.
    pub from: Option<ModeCode>,
    /// Mode after the transition.
    pub to: ModeCode,
}

/// The fault injector: decides per-read whether a sensor instance has
/// failed and records mode transitions and delivered injections.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    injections: CowVec<InjectionRecord>,
    transitions: CowVec<ModeTransitionRecord>,
    current_mode: Option<ModeCode>,
    reads: u64,
    failed_reads: u64,
}

impl FaultInjector {
    /// Creates an injector executing the given fault plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            ..Default::default()
        }
    }

    /// Creates an injector that never injects (golden / profiling runs).
    pub fn passthrough() -> Self {
        FaultInjector::new(FaultPlan::empty())
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Removes and returns the plan, leaving an empty one behind. The
    /// experiment runner uses this to hand the plan back to the caller at
    /// the end of a run without cloning it up front.
    pub fn take_plan(&mut self) -> FaultPlan {
        std::mem::take(&mut self.plan)
    }

    /// Replaces the plan being executed, keeping every record (delivered
    /// injections, mode transitions, read counters) intact. This is the
    /// fork primitive of checkpointed replay: a run restored from a
    /// snapshot keeps the injector bookkeeping of the shared prefix and
    /// swaps in the new scenario's plan for the remainder of the run.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Captures the injector's complete state — plan, delivered
    /// injections, mode transitions and read counters — so a later run
    /// can resume from this exact point (see [`InjectorSnapshot`]).
    /// Seals the record logs' tails first, so the capture shares the
    /// history structurally (O(1) in the record count) instead of
    /// deep-cloning it.
    pub fn snapshot(&mut self) -> InjectorSnapshot {
        self.injections.seal();
        self.transitions.seal();
        InjectorSnapshot {
            injector: self.clone(),
        }
    }

    /// Called from an instrumented sensor-driver read. Returns `true` if
    /// the read must be reported as failed, and records the first failed
    /// read per instance for the replay log.
    pub fn should_fail(&mut self, instance: SensorInstance, time: f64) -> bool {
        self.reads += 1;
        let failed = self.plan.is_failed(instance, time);
        if failed {
            self.failed_reads += 1;
            if !self.injections.iter().any(|r| r.instance == instance) {
                self.injections.push(InjectionRecord {
                    instance,
                    first_failed_read: time,
                });
            }
        }
        failed
    }

    /// Non-mutating variant of [`FaultInjector::should_fail`] for callers
    /// that only need the decision, not the bookkeeping.
    pub fn would_fail(&self, instance: SensorInstance, time: f64) -> bool {
        self.plan.is_failed(instance, time)
    }

    /// Called from the firmware's set-mode routine (the
    /// `hinj_update_mode()` call site). Records a transition when the mode
    /// actually changes.
    pub fn report_mode(&mut self, time: f64, mode: ModeCode) {
        if self.current_mode == Some(mode) {
            return;
        }
        self.transitions.push(ModeTransitionRecord {
            time,
            from: self.current_mode,
            to: mode,
        });
        self.current_mode = Some(mode);
    }

    /// The most recently reported mode, if any.
    pub fn current_mode(&self) -> Option<ModeCode> {
        self.current_mode
    }

    /// Injections actually delivered so far (first failed read per
    /// instance). Backed by a copy-on-write vector so snapshots share
    /// the records.
    pub fn injections(&self) -> &CowVec<InjectionRecord> {
        &self.injections
    }

    /// Mode transitions reported so far. Backed by a copy-on-write
    /// vector so snapshots share the records.
    pub fn mode_transitions(&self) -> &CowVec<ModeTransitionRecord> {
        &self.transitions
    }

    /// Total number of driver reads that consulted the injector.
    pub fn total_reads(&self) -> u64 {
        self.reads
    }

    /// Number of reads that were failed.
    pub fn failed_reads(&self) -> u64 {
        self.failed_reads
    }
}

/// A point-in-time capture of a [`FaultInjector`], taken mid-run by
/// [`FaultInjector::snapshot`]. Restoring yields an injector that behaves
/// bit-identically to the captured one;
/// [`InjectorSnapshot::restore_with_plan`] additionally swaps the fault
/// plan, which is how a checkpointed runner forks a new scenario off a
/// shared injection prefix.
#[derive(Debug, Clone)]
pub struct InjectorSnapshot {
    injector: FaultInjector,
}

impl InjectorSnapshot {
    /// Rebuilds the captured injector exactly.
    pub fn restore(&self) -> FaultInjector {
        self.injector.clone()
    }

    /// Rebuilds the captured injector with `plan` substituted for the
    /// captured plan. Only valid when `plan` agrees with the captured
    /// plan on every failure that starts before the capture time — the
    /// caller (the runner's snapshot cache) guarantees this by keying
    /// snapshots on the quantised injection prefix.
    pub fn restore_with_plan(&self, plan: FaultPlan) -> FaultInjector {
        let mut injector = self.injector.clone();
        injector.set_plan(plan);
        injector
    }

    /// Consuming form of [`InjectorSnapshot::restore_with_plan`], for
    /// callers that own the snapshot and want to avoid the extra clone.
    pub fn into_restored_with_plan(self, plan: FaultPlan) -> FaultInjector {
        let mut injector = self.injector;
        injector.set_plan(plan);
        injector
    }

    /// The plan that was active when the snapshot was taken.
    pub fn plan(&self) -> &FaultPlan {
        self.injector.plan()
    }

    /// Approximate heap footprint *exclusively owned* by the captured
    /// state (bytes), used by the snapshot cache's memory budget. The
    /// `Arc`-shared record chunks are accounted once per distinct chunk
    /// through [`InjectorSnapshot::for_each_chunk`].
    pub fn approx_bytes(&self) -> usize {
        self.injector.plan.len() * std::mem::size_of::<(SensorInstance, f64)>()
            + self.injector.injections.exclusive_bytes()
            + self.injector.transitions.exclusive_bytes()
            + std::mem::size_of::<FaultInjector>()
    }

    /// Visits the `Arc`-shared record chunks as `(identity, bytes)`
    /// pairs (see [`CowVec::for_each_chunk`]).
    pub fn for_each_chunk(&self, f: &mut dyn FnMut(usize, usize)) {
        self.injector.injections.for_each_chunk(f);
        self.injector.transitions.for_each_chunk(f);
    }

    /// The delta from `prev` to this capture. The record histories are
    /// `Arc`-chunk-shared (cloning them is O(chunks)); the plan is stored
    /// only when it differs from `prev`'s — along one recording run it
    /// never does.
    pub fn diff(&self, prev: &InjectorSnapshot) -> InjectorDelta {
        InjectorDelta {
            plan: (self.injector.plan != prev.injector.plan).then(|| self.injector.plan.clone()),
            injections: self
                .injector
                .injections
                .delta_from(&prev.injector.injections),
            transitions: self
                .injector
                .transitions
                .delta_from(&prev.injector.transitions),
            current_mode: self.injector.current_mode,
            reads: self.injector.reads,
            failed_reads: self.injector.failed_reads,
        }
    }

    /// Re-materialises the capture `delta` was diffed *to*, using `self`
    /// as the capture it was diffed *from*.
    pub fn apply(&self, delta: &InjectorDelta) -> InjectorSnapshot {
        InjectorSnapshot {
            injector: FaultInjector {
                plan: delta
                    .plan
                    .clone()
                    .unwrap_or_else(|| self.injector.plan.clone()),
                injections: CowVec::apply_delta(&self.injector.injections, &delta.injections),
                transitions: CowVec::apply_delta(&self.injector.transitions, &delta.transitions),
                current_mode: delta.current_mode,
                reads: delta.reads,
                failed_reads: delta.failed_reads,
            },
        }
    }
}

/// The dynamic slice of an [`InjectorSnapshot`] relative to an earlier
/// capture of the same run (see [`InjectorSnapshot::diff`]).
#[derive(Debug, Clone)]
pub struct InjectorDelta {
    /// `None` when the plan equals the base capture's (the common case —
    /// a run's plan never changes mid-run).
    plan: Option<FaultPlan>,
    injections: avis_sim::CowDelta<InjectionRecord>,
    transitions: avis_sim::CowDelta<ModeTransitionRecord>,
    current_mode: Option<ModeCode>,
    reads: u64,
    failed_reads: u64,
}

impl InjectorDelta {
    /// Approximate heap + inline bytes exclusively owned by the delta
    /// (the `Arc`-shared record chunks are accounted once per distinct
    /// chunk through [`InjectorDelta::for_each_chunk`]).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .plan
                .as_ref()
                .map(|p| p.len() * std::mem::size_of::<(SensorInstance, f64)>())
                .unwrap_or(0)
            + self.injections.exclusive_bytes()
            + self.transitions.exclusive_bytes()
    }

    /// Visits the `Arc`-shared record chunks as `(identity, bytes)`
    /// pairs (see [`CowVec::for_each_chunk`]).
    pub fn for_each_chunk(&self, f: &mut dyn FnMut(usize, usize)) {
        self.injections.for_each_chunk(f);
        self.transitions.for_each_chunk(f);
    }

    /// Serialises the delta for the persistent store. Record-log chunks
    /// go to `sink` content-addressed (see [`CowVec::encode_chunked`]).
    pub fn encode(&self, w: &mut ByteWriter, sink: &mut dyn ChunkSink) {
        w.option(self.plan.as_ref(), |w, p| p.encode(w));
        self.injections
            .encode_chunked(w, sink, &mut |w, rec: &InjectionRecord| rec.encode(w));
        self.transitions
            .encode_chunked(w, sink, &mut |w, rec: &ModeTransitionRecord| rec.encode(w));
        w.option(self.current_mode.as_ref(), |w, m| w.u32(m.0));
        w.u64(self.reads);
        w.u64(self.failed_reads);
    }

    /// Restores a delta serialised by [`InjectorDelta::encode`].
    pub fn decode(
        r: &mut ByteReader<'_>,
        source: &mut dyn ChunkSource,
    ) -> CodecResult<InjectorDelta> {
        Ok(InjectorDelta {
            plan: r.option(FaultPlan::decode)?,
            injections: CowDelta::decode_chunked(r, source, &mut InjectionRecord::decode)?,
            transitions: CowDelta::decode_chunked(r, source, &mut ModeTransitionRecord::decode)?,
            current_mode: r.option(|r| Ok(ModeCode(r.u32()?)))?,
            reads: r.u64()?,
            failed_reads: r.u64()?,
        })
    }
}

impl InjectionRecord {
    /// Serialises the record for the persistent store.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.instance.encode(w);
        w.f64(self.first_failed_read);
    }

    /// Restores a record serialised by [`InjectionRecord::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<InjectionRecord> {
        Ok(InjectionRecord {
            instance: SensorInstance::decode(r)?,
            first_failed_read: r.f64()?,
        })
    }
}

impl ModeTransitionRecord {
    /// Serialises the record for the persistent store.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.f64(self.time);
        w.option(self.from.as_ref(), |w, m| w.u32(m.0));
        w.u32(self.to.0);
    }

    /// Restores a record serialised by [`ModeTransitionRecord::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<ModeTransitionRecord> {
        Ok(ModeTransitionRecord {
            time: r.f64()?,
            from: r.option(|r| Ok(ModeCode(r.u32()?)))?,
            to: ModeCode(r.u32()?),
        })
    }
}

/// A cloneable, thread-safe handle to a [`FaultInjector`], shared between
/// the firmware's sensor frontend and the experiment runner.
#[derive(Debug, Clone, Default)]
pub struct SharedInjector {
    inner: Arc<Mutex<FaultInjector>>,
}

impl SharedInjector {
    /// Wraps an injector in a shared handle.
    pub fn new(injector: FaultInjector) -> Self {
        SharedInjector {
            inner: Arc::new(Mutex::new(injector)),
        }
    }

    /// A shared injector that never injects.
    pub fn passthrough() -> Self {
        SharedInjector::new(FaultInjector::passthrough())
    }

    /// Driver-side query: should this read fail?
    pub fn should_fail(&self, instance: SensorInstance, time: f64) -> bool {
        self.inner.lock().should_fail(instance, time)
    }

    /// Firmware-side mode report.
    pub fn report_mode(&self, time: f64, mode: ModeCode) {
        self.inner.lock().report_mode(time, mode);
    }

    /// Runs a closure with exclusive access to the underlying injector.
    pub fn with<R>(&self, f: impl FnOnce(&mut FaultInjector) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Snapshot of the mode transitions recorded so far.
    pub fn mode_transitions(&self) -> Vec<ModeTransitionRecord> {
        self.inner.lock().mode_transitions().to_vec()
    }

    /// Snapshot of the injections delivered so far.
    pub fn injections(&self) -> Vec<InjectionRecord> {
        self.inner.lock().injections().to_vec()
    }

    /// The plan being executed.
    pub fn plan(&self) -> FaultPlan {
        self.inner.lock().plan().clone()
    }

    /// Removes and returns the plan (see [`FaultInjector::take_plan`]).
    pub fn take_plan(&self) -> FaultPlan {
        self.inner.lock().take_plan()
    }

    /// Captures the underlying injector's state (see
    /// [`FaultInjector::snapshot`]).
    pub fn snapshot(&self) -> InjectorSnapshot {
        self.inner.lock().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_sim::SensorKind;

    fn gps(i: u8) -> SensorInstance {
        SensorInstance::new(SensorKind::Gps, i)
    }
    fn baro(i: u8) -> SensorInstance {
        SensorInstance::new(SensorKind::Barometer, i)
    }

    #[test]
    fn empty_plan_never_fails() {
        let mut inj = FaultInjector::passthrough();
        for t in 0..100 {
            assert!(!inj.should_fail(gps(0), t as f64));
        }
        assert_eq!(inj.failed_reads(), 0);
        assert_eq!(inj.total_reads(), 100);
        assert!(inj.injections().is_empty());
    }

    #[test]
    fn failure_is_permanent_after_start_time() {
        let plan = FaultPlan::from_specs(vec![FaultSpec::new(gps(0), 5.0)]);
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.should_fail(gps(0), 4.999));
        assert!(inj.should_fail(gps(0), 5.0));
        assert!(inj.should_fail(gps(0), 5.001));
        assert!(inj.should_fail(gps(0), 500.0));
        // Other instances of the same kind are unaffected.
        assert!(!inj.should_fail(gps(1), 500.0));
    }

    #[test]
    fn duplicate_instance_keeps_earliest_time() {
        let mut plan = FaultPlan::empty();
        plan.add(FaultSpec::new(baro(0), 7.0));
        plan.add(FaultSpec::new(baro(0), 3.0));
        plan.add(FaultSpec::new(baro(0), 9.0));
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.failure_time(baro(0)), Some(3.0));
    }

    #[test]
    fn with_does_not_mutate_original() {
        let base = FaultPlan::from_specs(vec![FaultSpec::new(gps(0), 1.0)]);
        let extended = base.with(FaultSpec::new(baro(0), 2.0));
        assert_eq!(base.len(), 1);
        assert_eq!(extended.len(), 2);
    }

    #[test]
    fn canonical_key_is_order_independent() {
        let a = FaultPlan::from_specs(vec![
            FaultSpec::new(gps(0), 1.0),
            FaultSpec::new(baro(1), 2.0),
        ]);
        let b = FaultPlan::from_specs(vec![
            FaultSpec::new(baro(1), 2.0),
            FaultSpec::new(gps(0), 1.0),
        ]);
        assert_eq!(a.canonical_key(), b.canonical_key());
        let c = FaultPlan::from_specs(vec![FaultSpec::new(gps(0), 1.001)]);
        let d = FaultPlan::from_specs(vec![FaultSpec::new(gps(0), 1.0)]);
        assert_ne!(c.canonical_key(), d.canonical_key());
        assert_eq!(FaultPlan::empty().canonical_key(), "");
    }

    #[test]
    fn injection_records_first_failed_read_only() {
        let plan = FaultPlan::from_specs(vec![FaultSpec::new(gps(0), 2.0)]);
        let mut inj = FaultInjector::new(plan);
        inj.should_fail(gps(0), 1.0);
        inj.should_fail(gps(0), 2.25);
        inj.should_fail(gps(0), 3.0);
        assert_eq!(inj.injections().len(), 1);
        assert_eq!(inj.injections()[0].first_failed_read, 2.25);
        assert_eq!(inj.failed_reads(), 2);
    }

    #[test]
    fn mode_transitions_deduplicated() {
        let mut inj = FaultInjector::passthrough();
        inj.report_mode(0.0, ModeCode(0));
        inj.report_mode(0.5, ModeCode(0));
        inj.report_mode(1.0, ModeCode(3));
        inj.report_mode(1.5, ModeCode(3));
        inj.report_mode(2.0, ModeCode(0));
        let t = inj.mode_transitions();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].from, None);
        assert_eq!(t[0].to, ModeCode(0));
        assert_eq!(t[1].from, Some(ModeCode(0)));
        assert_eq!(t[1].to, ModeCode(3));
        assert_eq!(t[2].to, ModeCode(0));
        assert_eq!(inj.current_mode(), Some(ModeCode(0)));
    }

    #[test]
    fn shared_injector_clones_share_state() {
        let shared = SharedInjector::new(FaultInjector::new(FaultPlan::from_specs(vec![
            FaultSpec::new(gps(0), 1.0),
        ])));
        let other = shared.clone();
        assert!(other.should_fail(gps(0), 2.0));
        shared.report_mode(0.1, ModeCode(7));
        assert_eq!(other.mode_transitions().len(), 1);
        assert_eq!(other.injections().len(), 1);
        assert_eq!(shared.plan().len(), 1);
    }

    #[test]
    fn would_fail_does_not_record() {
        let plan = FaultPlan::from_specs(vec![FaultSpec::new(gps(0), 1.0)]);
        let inj = FaultInjector::new(plan);
        assert!(inj.would_fail(gps(0), 2.0));
        assert_eq!(inj.total_reads(), 0);
        assert!(inj.injections().is_empty());
    }

    #[test]
    fn link_faults_extend_the_canonical_key() {
        let sensor_only = FaultPlan::from_specs(vec![FaultSpec::new(gps(0), 1.0)]);
        let storm = LinkFaultSpec::new(
            LinkFaultKind::Storm {
                command: StormCommand::Arm,
                count: 4,
            },
            LinkDirection::ToVehicle,
            2.0,
        );
        let with_link = sensor_only.with_link(storm);
        assert_ne!(sensor_only, with_link);
        assert_ne!(sensor_only.canonical_key(), with_link.canonical_key());
        assert!(with_link.canonical_key().contains("link:storm"));
        assert!(with_link.canonical_key().contains("gps"));
        // The sensor-side view is unchanged.
        assert_eq!(with_link.len(), 1);
        assert_eq!(with_link.specs().count(), 1);
        assert_eq!(with_link.link_plan().len(), 1);
        // A link-only plan is not empty.
        let link_only = FaultPlan::empty().with_link(storm);
        assert!(!link_only.is_empty());
        assert_eq!(link_only.len(), 0);
        assert!(link_only.to_string().contains("link:storm"));
    }

    #[test]
    fn merge_link_combines_protocol_faults() {
        let a = LinkFaultSpec::new(
            LinkFaultKind::Drop {
                duration: 1.0,
                probability: 1.0,
            },
            LinkDirection::ToGcs,
            5.0,
        );
        let b = LinkFaultSpec::new(
            LinkFaultKind::Delay {
                duration: 1.0,
                seconds: 0.5,
            },
            LinkDirection::ToVehicle,
            2.0,
        );
        let mut plan = FaultPlan::empty().with_link(a);
        plan.merge_link(&LinkFaultPlan::from_specs(vec![b]));
        assert_eq!(plan.link_plan().len(), 2);
        // Canonical ordering: the earlier fault comes first.
        assert_eq!(plan.link_plan().specs()[0].time, 2.0);
    }

    #[test]
    fn injector_delta_codec_round_trips_through_chunk_store() {
        let plan = FaultPlan::from_specs(vec![
            FaultSpec::new(gps(0), 2.0),
            FaultSpec::new(baro(1), 4.0),
        ])
        .with_link(LinkFaultSpec::new(
            LinkFaultKind::Corrupt {
                duration: 3.0,
                probability: 0.25,
            },
            LinkDirection::ToGcs,
            1.0,
        ));
        let mut inj = FaultInjector::new(plan);
        for t in 0..40 {
            inj.should_fail(gps(0), t as f64 * 0.2);
            inj.should_fail(baro(1), t as f64 * 0.2);
            if t % 10 == 0 {
                inj.report_mode(t as f64 * 0.2, ModeCode(t as u32 / 10));
            }
        }
        let base = inj.snapshot();
        for t in 40..80 {
            inj.should_fail(gps(0), t as f64 * 0.2);
        }
        inj.report_mode(16.0, ModeCode(9));
        let cut = inj.snapshot();
        let delta = cut.diff(&base);

        let mut store = avis_sim::cow::MemoryChunkStore::new();
        let mut w = ByteWriter::new();
        delta.encode(&mut w, &mut store);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = InjectorDelta::decode(&mut r, &mut store).expect("decode");
        r.finish().expect("no trailing bytes");

        let restored = base.apply(&decoded).restore();
        let original = base.apply(&delta).restore();
        assert_eq!(restored.plan(), original.plan());
        assert_eq!(
            restored.injections().to_vec(),
            original.injections().to_vec()
        );
        assert_eq!(
            restored.mode_transitions().to_vec(),
            original.mode_transitions().to_vec()
        );
        assert_eq!(restored.current_mode(), original.current_mode());
        assert_eq!(restored.total_reads(), original.total_reads());
        assert_eq!(restored.failed_reads(), original.failed_reads());
    }

    #[test]
    fn display_formats() {
        let spec = FaultSpec::new(gps(1), 2.5);
        assert_eq!(spec.to_string(), "gps[1]@2.500s");
        assert_eq!(FaultPlan::empty().to_string(), "(no faults)");
        let plan = FaultPlan::from_specs(vec![spec]);
        assert!(plan.to_string().contains("gps[1]"));
        assert_eq!(ModeCode(4).to_string(), "mode#4");
    }
}
