//! Protocol-level fault injection on the GCS ↔ vehicle link.
//!
//! The paper's fault model stops at sensors; this module extends the
//! injection surface to the MAVLink-like transport itself. A
//! [`FaultyLink`] wraps [`avis_mavlite::Link`] and applies a
//! [`LinkFaultPlan`] to every frame crossing the wire: per-message drop,
//! duplication, reorder-within-window, byte corruption, fixed delay and
//! mid-mission command storms. Every stochastic decision draws from a
//! seeded [`SimRng`] — never wall-clock — so link-fault runs replay
//! bit-identically and compose with the checkpoint/fork machinery the
//! same way sensor faults do.
//!
//! The shim's observable state at any simulation time `t` is a pure
//! function of the specs whose start time is `< t` (plus the rng stream
//! they consumed), which is exactly the contract the snapshot cache's
//! prefix keys rely on.

use avis_mavlite::{Endpoint, Link, LinkParts, Message, ProtocolMode};
use avis_sim::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use avis_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Which of the link's two byte streams a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LinkDirection {
    /// GCS → vehicle (commands and mission uploads).
    ToVehicle,
    /// Vehicle → GCS (heartbeats, telemetry and acks).
    ToGcs,
}

impl LinkDirection {
    /// The endpoint that receives frames on this stream.
    pub fn receiver(self) -> Endpoint {
        match self {
            LinkDirection::ToVehicle => Endpoint::Vehicle,
            LinkDirection::ToGcs => Endpoint::GroundStation,
        }
    }

    /// The endpoint that sends frames on this stream.
    pub fn sender(self) -> Endpoint {
        match self {
            LinkDirection::ToVehicle => Endpoint::GroundStation,
            LinkDirection::ToGcs => Endpoint::Vehicle,
        }
    }

    /// The stream a frame sent from `from` travels on.
    pub fn from_sender(from: Endpoint) -> Self {
        match from {
            Endpoint::GroundStation => LinkDirection::ToVehicle,
            Endpoint::Vehicle => LinkDirection::ToGcs,
        }
    }

    fn short_name(self) -> &'static str {
        match self {
            LinkDirection::ToVehicle => "tv",
            LinkDirection::ToGcs => "tg",
        }
    }

    /// Serialises the direction for the persistent snapshot store.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u8(match self {
            LinkDirection::ToVehicle => 0,
            LinkDirection::ToGcs => 1,
        });
    }

    /// Reads a direction written by [`LinkDirection::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        match r.u8()? {
            0 => Ok(LinkDirection::ToVehicle),
            1 => Ok(LinkDirection::ToGcs),
            _ => Err(CodecError::Malformed("link direction tag")),
        }
    }
}

/// The command a [`LinkFaultKind::Storm`] floods the link with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StormCommand {
    /// A burst of `ArmDisarm { arm: true }` requests.
    Arm,
    /// A burst of `SetMode { mode: ReturnToLaunch }` requests.
    ReturnToLaunch,
}

impl StormCommand {
    fn message(self) -> Message {
        match self {
            StormCommand::Arm => Message::ArmDisarm { arm: true },
            StormCommand::ReturnToLaunch => Message::SetMode {
                mode: ProtocolMode::ReturnToLaunch,
            },
        }
    }

    fn short_name(self) -> &'static str {
        match self {
            StormCommand::Arm => "arm",
            StormCommand::ReturnToLaunch => "rtl",
        }
    }

    /// Serialises the command for the persistent snapshot store.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u8(match self {
            StormCommand::Arm => 0,
            StormCommand::ReturnToLaunch => 1,
        });
    }

    /// Reads a command written by [`StormCommand::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        match r.u8()? {
            0 => Ok(StormCommand::Arm),
            1 => Ok(StormCommand::ReturnToLaunch),
            _ => Err(CodecError::Malformed("storm command tag")),
        }
    }
}

/// One protocol-level fault behaviour.
///
/// Window kinds (`Drop`, `Duplicate`, `Reorder`, `Corrupt`, `Delay`) act
/// on every frame sent on their stream while `spec.time <= now <
/// spec.time + duration`; `Storm` fires once, at the first delivery on
/// its stream at or after `spec.time`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkFaultKind {
    /// Silently discard frames (the sender's sequence counter still
    /// advances, so the receiver observes the gap).
    Drop {
        /// Length of the active window (s).
        duration: f64,
        /// Per-frame drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Deliver an extra copy of frames.
    Duplicate {
        /// Length of the active window (s).
        duration: f64,
        /// Per-frame duplication probability in `[0, 1]`.
        probability: f64,
    },
    /// Hold frames and release them in reversed order once `window`
    /// frames have accumulated (or the active window ends).
    Reorder {
        /// Length of the active window (s).
        duration: f64,
        /// Number of frames held back before a reversed flush.
        window: usize,
    },
    /// Flip one frame byte chosen by the seeded rng, exercising the
    /// codec's checksum/resynchronisation path.
    Corrupt {
        /// Length of the active window (s).
        duration: f64,
        /// Per-frame corruption probability in `[0, 1]`.
        probability: f64,
    },
    /// Deliver frames a fixed number of seconds late.
    Delay {
        /// Length of the active window (s).
        duration: f64,
        /// Added latency per frame (s).
        seconds: f64,
    },
    /// Inject a burst of identical GCS-style commands onto the stream
    /// (a hijacked or misbehaving ground station).
    Storm {
        /// The command to flood with.
        command: StormCommand,
        /// Number of copies injected.
        count: u32,
    },
}

impl LinkFaultKind {
    /// The active-window length of this kind (0 for one-shot storms).
    pub fn duration(&self) -> f64 {
        match *self {
            LinkFaultKind::Drop { duration, .. }
            | LinkFaultKind::Duplicate { duration, .. }
            | LinkFaultKind::Reorder { duration, .. }
            | LinkFaultKind::Corrupt { duration, .. }
            | LinkFaultKind::Delay { duration, .. } => duration,
            LinkFaultKind::Storm { .. } => 0.0,
        }
    }

    /// Serialises the fault behaviour for the persistent snapshot store.
    pub fn encode(&self, w: &mut ByteWriter) {
        match *self {
            LinkFaultKind::Drop {
                duration,
                probability,
            } => {
                w.u8(0);
                w.f64(duration);
                w.f64(probability);
            }
            LinkFaultKind::Duplicate {
                duration,
                probability,
            } => {
                w.u8(1);
                w.f64(duration);
                w.f64(probability);
            }
            LinkFaultKind::Reorder { duration, window } => {
                w.u8(2);
                w.f64(duration);
                w.usize(window);
            }
            LinkFaultKind::Corrupt {
                duration,
                probability,
            } => {
                w.u8(3);
                w.f64(duration);
                w.f64(probability);
            }
            LinkFaultKind::Delay { duration, seconds } => {
                w.u8(4);
                w.f64(duration);
                w.f64(seconds);
            }
            LinkFaultKind::Storm { command, count } => {
                w.u8(5);
                command.encode(w);
                w.u32(count);
            }
        }
    }

    /// Reads a fault behaviour written by [`LinkFaultKind::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        Ok(match r.u8()? {
            0 => LinkFaultKind::Drop {
                duration: r.f64()?,
                probability: r.f64()?,
            },
            1 => LinkFaultKind::Duplicate {
                duration: r.f64()?,
                probability: r.f64()?,
            },
            2 => LinkFaultKind::Reorder {
                duration: r.f64()?,
                window: r.usize()?,
            },
            3 => LinkFaultKind::Corrupt {
                duration: r.f64()?,
                probability: r.f64()?,
            },
            4 => LinkFaultKind::Delay {
                duration: r.f64()?,
                seconds: r.f64()?,
            },
            5 => LinkFaultKind::Storm {
                command: StormCommand::decode(r)?,
                count: r.u32()?,
            },
            _ => return Err(CodecError::Malformed("link fault kind tag")),
        })
    }
}

/// One scheduled protocol fault: `kind` applied to `direction` starting
/// at simulation time `time`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultSpec {
    /// The fault behaviour.
    pub kind: LinkFaultKind,
    /// The stream it applies to.
    pub direction: LinkDirection,
    /// Simulation time at which the fault starts (s).
    pub time: f64,
}

impl LinkFaultSpec {
    /// Creates a link fault specification.
    pub fn new(kind: LinkFaultKind, direction: LinkDirection, time: f64) -> Self {
        LinkFaultSpec {
            kind,
            direction,
            time,
        }
    }

    /// Returns `true` if this spec's window is active at `now`.
    pub fn active_at(&self, now: f64) -> bool {
        now >= self.time && now < self.time + self.kind.duration()
    }

    /// A canonical, quantised string identifying this spec — the link
    /// analogue of the sensor plan's `kind:index:time_ms` parts. Times
    /// and probabilities are quantised (ms / 1e-3) so replay jitter does
    /// not create spurious distinct plans.
    pub fn canonical_part(&self) -> String {
        let q = |v: f64| (v * 1000.0).round() as i64;
        let dir = self.direction.short_name();
        let t = q(self.time);
        match self.kind {
            LinkFaultKind::Drop {
                duration,
                probability,
            } => format!("link:drop:{dir}:{t}:{}:{}", q(duration), q(probability)),
            LinkFaultKind::Duplicate {
                duration,
                probability,
            } => format!("link:dup:{dir}:{t}:{}:{}", q(duration), q(probability)),
            LinkFaultKind::Reorder { duration, window } => {
                format!("link:reorder:{dir}:{t}:{}:{window}", q(duration))
            }
            LinkFaultKind::Corrupt {
                duration,
                probability,
            } => format!("link:corrupt:{dir}:{t}:{}:{}", q(duration), q(probability)),
            LinkFaultKind::Delay { duration, seconds } => {
                format!("link:delay:{dir}:{t}:{}:{}", q(duration), q(seconds))
            }
            LinkFaultKind::Storm { command, count } => {
                format!("link:storm:{dir}:{t}:{}:{count}", command.short_name())
            }
        }
    }

    /// Serialises the spec for the persistent snapshot store.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.kind.encode(w);
        self.direction.encode(w);
        w.f64(self.time);
    }

    /// Reads a spec written by [`LinkFaultSpec::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        Ok(LinkFaultSpec {
            kind: LinkFaultKind::decode(r)?,
            direction: LinkDirection::decode(r)?,
            time: r.f64()?,
        })
    }
}

impl fmt::Display for LinkFaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{:.3}s", self.canonical_part(), self.time)
    }
}

/// The complete set of protocol faults to inject during one test run —
/// the link analogue of [`crate::FaultPlan`].
///
/// Specs are kept sorted by `(start time, canonical part)` so two plans
/// built from the same specs in any order compare equal, display the
/// same, and produce the same canonical key and injection prefixes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(from = "Vec<LinkFaultSpec>", into = "Vec<LinkFaultSpec>")]
pub struct LinkFaultPlan {
    specs: Vec<LinkFaultSpec>,
}

impl From<Vec<LinkFaultSpec>> for LinkFaultPlan {
    fn from(specs: Vec<LinkFaultSpec>) -> Self {
        LinkFaultPlan::from_specs(specs)
    }
}

impl From<LinkFaultPlan> for Vec<LinkFaultSpec> {
    fn from(plan: LinkFaultPlan) -> Self {
        plan.specs
    }
}

impl LinkFaultPlan {
    /// An empty plan: a transparent link.
    pub fn empty() -> Self {
        LinkFaultPlan::default()
    }

    /// Builds a plan from specifications (duplicates are kept — two
    /// identical drop windows behave like one with doubled odds).
    pub fn from_specs<I: IntoIterator<Item = LinkFaultSpec>>(specs: I) -> Self {
        let mut plan = LinkFaultPlan::default();
        for spec in specs {
            plan.add(spec);
        }
        plan
    }

    /// Adds a fault, keeping the canonical ordering.
    pub fn add(&mut self, spec: LinkFaultSpec) {
        self.specs.push(spec);
        self.normalise();
    }

    /// Returns a new plan equal to `self` plus the given fault.
    pub fn with(&self, spec: LinkFaultSpec) -> Self {
        let mut next = self.clone();
        next.add(spec);
        next
    }

    /// Merges every fault of `other` into `self`.
    pub fn merge(&mut self, other: &LinkFaultPlan) {
        self.specs.extend(other.specs.iter().copied());
        self.normalise();
    }

    fn normalise(&mut self) {
        self.specs.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then_with(|| a.canonical_part().cmp(&b.canonical_part()))
        });
    }

    /// Returns `true` if no protocol faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of scheduled protocol faults.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// The scheduled faults in canonical `(time, part)` order.
    pub fn specs(&self) -> &[LinkFaultSpec] {
        &self.specs
    }

    /// A canonical, order-independent key for de-duplicating plans,
    /// matching the quantisation of [`crate::FaultPlan::canonical_key`].
    pub fn canonical_key(&self) -> String {
        let parts: Vec<String> = self.specs.iter().map(|s| s.canonical_part()).collect();
        parts.join("|")
    }

    /// The canonical parts of every fault starting strictly before `t` —
    /// the link half of a snapshot's injection-prefix key.
    pub fn prefix_key(&self, t: f64) -> String {
        let parts: Vec<String> = self
            .specs
            .iter()
            .filter(|s| s.time < t)
            .map(|s| s.canonical_part())
            .collect();
        parts.join("|")
    }

    /// Sorted, deduplicated start times of every scheduled fault — the
    /// candidate snapshot-boundary times a forked run must respect.
    pub fn fault_times(&self) -> Vec<f64> {
        let mut times: Vec<f64> = self.specs.iter().map(|s| s.time).collect();
        times.sort_by(f64::total_cmp);
        times.dedup();
        times
    }
}

impl fmt::Display for LinkFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("(no link faults)");
        }
        let parts: Vec<String> = self.specs.iter().map(|s| s.canonical_part()).collect();
        f.write_str(&parts.join(", "))
    }
}

/// Counters for the fault behaviours actually applied to traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaultStats {
    /// Frames silently discarded.
    pub dropped: u64,
    /// Extra frame copies delivered.
    pub duplicated: u64,
    /// Frames with a flipped byte.
    pub corrupted: u64,
    /// Frames delivered late.
    pub delayed: u64,
    /// Frames released out of order.
    pub reordered: u64,
    /// Frames injected by command storms.
    pub storm_frames: u64,
}

impl LinkFaultStats {
    /// Serialises the counters for the persistent snapshot store.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.u64(self.dropped);
        w.u64(self.duplicated);
        w.u64(self.corrupted);
        w.u64(self.delayed);
        w.u64(self.reordered);
        w.u64(self.storm_frames);
    }

    /// Reads counters written by [`LinkFaultStats::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        Ok(LinkFaultStats {
            dropped: r.u64()?,
            duplicated: r.u64()?,
            corrupted: r.u64()?,
            delayed: r.u64()?,
            reordered: r.u64()?,
            storm_frames: r.u64()?,
        })
    }
}

/// A deterministic fault-injecting shim around [`Link`].
///
/// All traffic goes through [`FaultyLink::send`] /
/// [`FaultyLink::deliver`], which apply the plan's active faults using
/// the shim's seeded rng. With an empty plan the shim is byte-for-byte
/// transparent: `send` + `deliver` behave exactly like `Link::send` +
/// `Link::drain`.
#[derive(Debug, Clone)]
pub struct FaultyLink {
    link: Link,
    plan: LinkFaultPlan,
    // snapshot: skip(inline Copy state carried whole by LinkSnapshot::capture's FaultyLink clone; no heap to account)
    rng: SimRng,
    /// Frames held back by a `Delay` fault: `(release_time, stream,
    /// bytes)`, in send order.
    delayed: Vec<(f64, LinkDirection, Vec<u8>)>,
    /// Frames held back by an active `Reorder` fault, per stream.
    reorder_to_vehicle: Vec<Vec<u8>>,
    reorder_to_gcs: Vec<Vec<u8>>,
    /// Canonical parts of the storms that already fired. Keyed by part —
    /// not by plan index — so the set stays valid across the snapshot
    /// fork's plan substitution.
    storms_fired: BTreeSet<String>,
    // snapshot: skip(inline Copy counters carried whole by LinkSnapshot::capture's FaultyLink clone; no heap to account)
    stats: LinkFaultStats,
}

impl FaultyLink {
    /// Creates a shim executing `plan`, drawing from `rng`.
    pub fn new(plan: LinkFaultPlan, rng: SimRng) -> Self {
        FaultyLink {
            link: Link::new(),
            plan,
            rng,
            delayed: Vec::new(),
            reorder_to_vehicle: Vec::new(),
            reorder_to_gcs: Vec::new(),
            storms_fired: BTreeSet::new(),
            stats: LinkFaultStats::default(),
        }
    }

    /// A transparent shim (no faults; the rng is never consumed).
    pub fn passthrough() -> Self {
        FaultyLink::new(LinkFaultPlan::empty(), SimRng::seed_from_u64(0))
    }

    /// The plan being executed.
    pub fn plan(&self) -> &LinkFaultPlan {
        &self.plan
    }

    /// The wrapped link (sequence-gap and decode-error observability).
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Counters of the faults applied so far.
    pub fn stats(&self) -> LinkFaultStats {
        self.stats
    }

    /// Sends `msg` from `from` at simulation time `now`, applying every
    /// fault window active on the frame's stream.
    ///
    /// The sender's sequence counter always advances — dropped frames
    /// leave a receiver-observable gap, exactly like a lossy radio.
    pub fn send(&mut self, from: Endpoint, msg: &Message, now: f64) {
        let dir = LinkDirection::from_sender(from);
        self.release_due(dir, now);
        let frame = self.link.encode_next(from, msg).to_vec();
        let mut frames: Vec<Vec<u8>> = vec![frame];
        let mut delay: Option<f64> = None;
        let mut reorder_window: Option<usize> = None;
        // Walk the active windows in canonical plan order; each draws
        // from the rng only while active, so the rng stream (and thus
        // every downstream byte) is a pure function of the plan prefix.
        for i in 0..self.plan.specs.len() {
            let spec = self.plan.specs[i];
            if spec.direction != dir || !spec.active_at(now) {
                continue;
            }
            match spec.kind {
                LinkFaultKind::Drop { probability, .. } => {
                    if !frames.is_empty() && self.rng.chance(probability) {
                        self.stats.dropped += frames.len() as u64;
                        frames.clear();
                    }
                }
                LinkFaultKind::Duplicate { probability, .. } => {
                    if !frames.is_empty() && self.rng.chance(probability) {
                        frames.push(frames[0].clone());
                        self.stats.duplicated += 1;
                    }
                }
                LinkFaultKind::Corrupt { probability, .. } => {
                    for frame in frames.iter_mut() {
                        if self.rng.chance(probability) {
                            let idx = self.rng.index(frame.len());
                            // XOR with a non-zero mask guarantees the byte
                            // actually changes.
                            let mask = (self.rng.index(255) + 1) as u8;
                            frame[idx] ^= mask;
                            self.stats.corrupted += 1;
                        }
                    }
                }
                LinkFaultKind::Delay { seconds, .. } => delay = Some(seconds),
                LinkFaultKind::Reorder { window, .. } => reorder_window = Some(window.max(2)),
                LinkFaultKind::Storm { .. } => {}
            }
        }
        for frame in frames {
            if let Some(seconds) = delay {
                // Delay wins over reorder: a late frame is already out of
                // order by the time it is released.
                self.stats.delayed += 1;
                self.delayed.push((now + seconds, dir, frame));
            } else if let Some(window) = reorder_window {
                let buffer = self.reorder_buffer(dir);
                buffer.push(frame);
                if buffer.len() >= window {
                    self.flush_reorder(dir);
                }
            } else {
                self.link.inject_frame(dir.receiver(), &frame);
            }
        }
    }

    /// Delivers every message pending at `at`, first releasing delayed
    /// frames that have come due, flushing reorder buffers whose window
    /// has ended, and firing any storms scheduled at or before `now`.
    pub fn deliver(&mut self, at: Endpoint, now: f64) -> Vec<Message> {
        let dir = match at {
            Endpoint::Vehicle => LinkDirection::ToVehicle,
            Endpoint::GroundStation => LinkDirection::ToGcs,
        };
        self.release_due(dir, now);
        let reorder_active = self.plan.specs.iter().any(|s| {
            s.direction == dir
                && matches!(s.kind, LinkFaultKind::Reorder { .. })
                && s.active_at(now)
        });
        if !reorder_active && !self.reorder_buffer(dir).is_empty() {
            self.flush_reorder(dir);
        }
        self.fire_storms(dir, now);
        self.link.drain(at)
    }

    /// Injects frames held by `Delay` faults whose release time has come.
    fn release_due(&mut self, dir: LinkDirection, now: f64) {
        let mut i = 0;
        while i < self.delayed.len() {
            let (release, d, _) = &self.delayed[i];
            if *d == dir && *release <= now {
                let (_, _, frame) = self.delayed.remove(i);
                self.link.inject_frame(dir.receiver(), &frame);
            } else {
                i += 1;
            }
        }
    }

    fn reorder_buffer(&mut self, dir: LinkDirection) -> &mut Vec<Vec<u8>> {
        match dir {
            LinkDirection::ToVehicle => &mut self.reorder_to_vehicle,
            LinkDirection::ToGcs => &mut self.reorder_to_gcs,
        }
    }

    /// Releases a reorder buffer in reversed (last-in, first-out) order.
    fn flush_reorder(&mut self, dir: LinkDirection) {
        let mut held = std::mem::take(self.reorder_buffer(dir));
        held.reverse();
        self.stats.reordered += held.len() as u64;
        for frame in held {
            self.link.inject_frame(dir.receiver(), &frame);
        }
    }

    /// Fires every storm on `dir` scheduled at or before `now` that has
    /// not fired yet.
    fn fire_storms(&mut self, dir: LinkDirection, now: f64) {
        for i in 0..self.plan.specs.len() {
            let spec = self.plan.specs[i];
            let LinkFaultKind::Storm { command, count } = spec.kind else {
                continue;
            };
            if spec.direction != dir || now < spec.time {
                continue;
            }
            let part = spec.canonical_part();
            if !self.storms_fired.insert(part) {
                continue;
            }
            let msg = command.message();
            for _ in 0..count {
                let frame = self.link.encode_next(dir.sender(), &msg).to_vec();
                self.link.inject_frame(dir.receiver(), &frame);
                self.stats.storm_frames += 1;
            }
        }
    }
}

/// A point-in-time capture of a [`FaultyLink`], the link analogue of
/// [`crate::InjectorSnapshot`]. The captured state (byte queues, rng
/// stream position, delayed/reordered frames, fired storms) is small —
/// at a loop-top cut the queues are normally empty — so captures and
/// deltas carry it by value.
#[derive(Debug, Clone)]
pub struct LinkSnapshot {
    faulty: FaultyLink,
}

impl LinkSnapshot {
    /// Captures the shim's complete state.
    pub fn capture(faulty: &FaultyLink) -> Self {
        LinkSnapshot {
            faulty: faulty.clone(),
        }
    }

    /// Rebuilds the captured shim exactly.
    pub fn restore(&self) -> FaultyLink {
        self.faulty.clone()
    }

    /// Rebuilds the captured shim with `plan` substituted. Only valid
    /// when `plan` agrees with the captured plan on every fault starting
    /// before the capture time — guaranteed by the snapshot cache's
    /// prefix keys, exactly as for the sensor injector.
    pub fn into_restored_with_plan(self, plan: LinkFaultPlan) -> FaultyLink {
        let mut faulty = self.faulty;
        faulty.plan = plan;
        faulty
    }

    /// The plan that was active when the capture was taken.
    pub fn plan(&self) -> &LinkFaultPlan {
        &self.faulty.plan
    }

    /// Approximate heap footprint of the captured state (bytes).
    pub fn approx_bytes(&self) -> usize {
        let f = &self.faulty;
        std::mem::size_of::<FaultyLink>()
            + f.link.pending_bytes(Endpoint::Vehicle)
            + f.link.pending_bytes(Endpoint::GroundStation)
            + f.plan.len() * std::mem::size_of::<LinkFaultSpec>()
            + f.delayed
                .iter()
                .map(|(_, _, b)| b.len() + 24)
                .sum::<usize>()
            + f.reorder_to_vehicle.iter().map(|b| b.len()).sum::<usize>()
            + f.reorder_to_gcs.iter().map(|b| b.len()).sum::<usize>()
            + f.storms_fired.iter().map(|s| s.len()).sum::<usize>()
    }

    /// The delta from `prev` to this capture. Link state is tiny and has
    /// no `Arc`-shared history, so the delta carries the capture by
    /// value — mirroring how `RunDelta` carries the workload.
    pub fn diff(&self, _prev: &LinkSnapshot) -> LinkDelta {
        LinkDelta {
            snapshot: self.clone(),
        }
    }

    /// Re-materialises the capture `delta` was diffed *to*.
    pub fn apply(&self, delta: &LinkDelta) -> LinkSnapshot {
        delta.snapshot.clone()
    }

    /// Serialises the captured shim for the persistent snapshot store.
    pub fn encode(&self, w: &mut ByteWriter) {
        let f = &self.faulty;
        let parts = f.link.export_parts();
        w.bytes(&parts.to_vehicle);
        w.bytes(&parts.to_gcs);
        w.u8(parts.seq_gcs);
        w.u8(parts.seq_vehicle);
        w.option(parts.expected_at_vehicle.as_ref(), |w, s| w.u8(*s));
        w.option(parts.expected_at_gcs.as_ref(), |w, s| w.u8(*s));
        w.u64(parts.seq_gaps_at_vehicle);
        w.u64(parts.seq_gaps_at_gcs);
        w.u64(parts.decode_errors);
        w.seq(f.plan.specs(), |w, s| s.encode(w));
        f.rng.encode(w);
        w.seq(&f.delayed, |w, (release, dir, bytes)| {
            w.f64(*release);
            dir.encode(w);
            w.bytes(bytes);
        });
        w.seq(&f.reorder_to_vehicle, |w, b| w.bytes(b));
        w.seq(&f.reorder_to_gcs, |w, b| w.bytes(b));
        let storms: Vec<&String> = f.storms_fired.iter().collect();
        w.seq(&storms, |w, s| w.str(s));
        f.stats.encode(w);
    }

    /// Reads a capture written by [`LinkSnapshot::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        let parts = LinkParts {
            to_vehicle: r.bytes()?,
            to_gcs: r.bytes()?,
            seq_gcs: r.u8()?,
            seq_vehicle: r.u8()?,
            expected_at_vehicle: r.option(|r| r.u8())?,
            expected_at_gcs: r.option(|r| r.u8())?,
            seq_gaps_at_vehicle: r.u64()?,
            seq_gaps_at_gcs: r.u64()?,
            decode_errors: r.u64()?,
        };
        let specs = r.seq(LinkFaultSpec::decode)?;
        let rng = SimRng::decode(r)?;
        let delayed = r.seq(|r| {
            let release = r.f64()?;
            let dir = LinkDirection::decode(r)?;
            let bytes = r.bytes()?;
            Ok((release, dir, bytes))
        })?;
        let reorder_to_vehicle = r.seq(|r| r.bytes())?;
        let reorder_to_gcs = r.seq(|r| r.bytes())?;
        let storms_fired: BTreeSet<String> = r.seq(|r| r.str())?.into_iter().collect();
        let stats = LinkFaultStats::decode(r)?;
        Ok(LinkSnapshot {
            faulty: FaultyLink {
                link: Link::from_parts(parts),
                plan: LinkFaultPlan::from_specs(specs),
                rng,
                delayed,
                reorder_to_vehicle,
                reorder_to_gcs,
                storms_fired,
                stats,
            },
        })
    }
}

/// The dynamic slice of a [`LinkSnapshot`] relative to an earlier
/// capture (see [`LinkSnapshot::diff`]).
#[derive(Debug, Clone)]
pub struct LinkDelta {
    snapshot: LinkSnapshot,
}

impl LinkDelta {
    /// Approximate heap + inline bytes owned by the delta.
    pub fn approx_bytes(&self) -> usize {
        self.snapshot.approx_bytes()
    }

    /// Serialises the delta for the persistent snapshot store.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.snapshot.encode(w);
    }

    /// Reads a delta written by [`LinkDelta::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        Ok(LinkDelta {
            snapshot: LinkSnapshot::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop_all(dir: LinkDirection, time: f64, duration: f64) -> LinkFaultSpec {
        LinkFaultSpec::new(
            LinkFaultKind::Drop {
                duration,
                probability: 1.0,
            },
            dir,
            time,
        )
    }

    fn heartbeat() -> Message {
        Message::Heartbeat {
            mode: ProtocolMode::Auto,
            armed: true,
        }
    }

    #[test]
    fn passthrough_is_transparent() {
        let mut faulty = FaultyLink::passthrough();
        for i in 0..10u16 {
            faulty.send(
                Endpoint::GroundStation,
                &Message::MissionRequest { seq: i },
                i as f64,
            );
        }
        let got = faulty.deliver(Endpoint::Vehicle, 10.0);
        assert_eq!(got.len(), 10);
        assert_eq!(got[9], Message::MissionRequest { seq: 9 });
        assert_eq!(faulty.link().seq_gaps(Endpoint::Vehicle), 0);
        assert_eq!(faulty.stats(), LinkFaultStats::default());
    }

    #[test]
    fn drop_window_discards_frames_and_leaves_seq_gaps() {
        let plan = LinkFaultPlan::from_specs(vec![drop_all(LinkDirection::ToVehicle, 5.0, 2.0)]);
        let mut faulty = FaultyLink::new(plan, SimRng::seed_from_u64(1));
        // Before, inside and after the window.
        faulty.send(Endpoint::GroundStation, &heartbeat(), 4.0);
        faulty.send(Endpoint::GroundStation, &heartbeat(), 5.5);
        faulty.send(Endpoint::GroundStation, &heartbeat(), 6.9);
        faulty.send(Endpoint::GroundStation, &heartbeat(), 7.5);
        let got = faulty.deliver(Endpoint::Vehicle, 8.0);
        assert_eq!(got.len(), 2, "the two in-window frames are dropped");
        assert_eq!(faulty.stats().dropped, 2);
        assert_eq!(faulty.link().seq_gaps(Endpoint::Vehicle), 2);
        // The reverse stream is untouched.
        faulty.send(Endpoint::Vehicle, &heartbeat(), 6.0);
        assert_eq!(faulty.deliver(Endpoint::GroundStation, 6.0).len(), 1);
    }

    #[test]
    fn duplicate_window_delivers_extra_copies() {
        let plan = LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
            LinkFaultKind::Duplicate {
                duration: 10.0,
                probability: 1.0,
            },
            LinkDirection::ToVehicle,
            0.0,
        )]);
        let mut faulty = FaultyLink::new(plan, SimRng::seed_from_u64(2));
        faulty.send(
            Endpoint::GroundStation,
            &Message::ArmDisarm { arm: true },
            1.0,
        );
        let got = faulty.deliver(Endpoint::Vehicle, 1.0);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|m| *m == Message::ArmDisarm { arm: true }));
        assert_eq!(faulty.stats().duplicated, 1);
    }

    #[test]
    fn corrupt_window_exercises_codec_recovery() {
        let plan = LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
            LinkFaultKind::Corrupt {
                duration: 100.0,
                probability: 1.0,
            },
            LinkDirection::ToGcs,
            0.0,
        )]);
        let mut faulty = FaultyLink::new(plan, SimRng::seed_from_u64(3));
        for _ in 0..20 {
            faulty.send(Endpoint::Vehicle, &heartbeat(), 1.0);
        }
        let got = faulty.deliver(Endpoint::GroundStation, 1.0);
        assert_eq!(faulty.stats().corrupted, 20);
        // Every frame had a byte flipped; a lucky flip can still decode
        // (e.g. the seq byte), but most must be dropped by the codec.
        assert!(got.len() < 20);
        assert!(faulty.link().decode_error_count() > 0);
    }

    #[test]
    fn delay_holds_frames_until_release_time() {
        let plan = LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
            LinkFaultKind::Delay {
                duration: 10.0,
                seconds: 2.0,
            },
            LinkDirection::ToVehicle,
            0.0,
        )]);
        let mut faulty = FaultyLink::new(plan, SimRng::seed_from_u64(4));
        faulty.send(Endpoint::GroundStation, &heartbeat(), 1.0);
        assert!(faulty.deliver(Endpoint::Vehicle, 1.0).is_empty());
        assert!(faulty.deliver(Endpoint::Vehicle, 2.9).is_empty());
        assert_eq!(faulty.deliver(Endpoint::Vehicle, 3.0).len(), 1);
        assert_eq!(faulty.stats().delayed, 1);
    }

    #[test]
    fn reorder_window_reverses_frames() {
        let plan = LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
            LinkFaultKind::Reorder {
                duration: 10.0,
                window: 3,
            },
            LinkDirection::ToVehicle,
            0.0,
        )]);
        let mut faulty = FaultyLink::new(plan, SimRng::seed_from_u64(5));
        for i in 0..3u16 {
            faulty.send(
                Endpoint::GroundStation,
                &Message::MissionRequest { seq: i },
                1.0,
            );
        }
        let got = faulty.deliver(Endpoint::Vehicle, 1.0);
        let seqs: Vec<u16> = got
            .iter()
            .map(|m| match m {
                Message::MissionRequest { seq } => *seq,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![2, 1, 0]);
        assert_eq!(faulty.stats().reordered, 3);
    }

    #[test]
    fn reorder_buffer_flushes_when_window_ends() {
        let plan = LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
            LinkFaultKind::Reorder {
                duration: 2.0,
                window: 10,
            },
            LinkDirection::ToVehicle,
            0.0,
        )]);
        let mut faulty = FaultyLink::new(plan, SimRng::seed_from_u64(6));
        faulty.send(Endpoint::GroundStation, &heartbeat(), 1.0);
        assert!(faulty.deliver(Endpoint::Vehicle, 1.5).is_empty());
        // Past the window's end the held frame is released.
        assert_eq!(faulty.deliver(Endpoint::Vehicle, 2.5).len(), 1);
    }

    #[test]
    fn storm_fires_once_at_first_delivery() {
        let plan = LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
            LinkFaultKind::Storm {
                command: StormCommand::Arm,
                count: 5,
            },
            LinkDirection::ToVehicle,
            3.0,
        )]);
        let mut faulty = FaultyLink::new(plan, SimRng::seed_from_u64(7));
        assert!(faulty.deliver(Endpoint::Vehicle, 2.9).is_empty());
        let got = faulty.deliver(Endpoint::Vehicle, 3.0);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|m| *m == Message::ArmDisarm { arm: true }));
        // Subsequent deliveries do not re-fire.
        assert!(faulty.deliver(Endpoint::Vehicle, 4.0).is_empty());
        assert_eq!(faulty.stats().storm_frames, 5);
    }

    #[test]
    fn same_seed_same_fault_decisions() {
        let plan = LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
            LinkFaultKind::Drop {
                duration: 50.0,
                probability: 0.5,
            },
            LinkDirection::ToVehicle,
            0.0,
        )]);
        let run = || {
            let mut faulty = FaultyLink::new(plan.clone(), SimRng::seed_from_u64(99));
            for i in 0..100u16 {
                faulty.send(
                    Endpoint::GroundStation,
                    &Message::MissionRequest { seq: i },
                    i as f64 * 0.1,
                );
            }
            faulty.deliver(Endpoint::Vehicle, 10.0)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() < 100, "p=0.5 drops some, not all");
    }

    #[test]
    fn snapshot_restores_bit_identical_state() {
        let plan = LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
            LinkFaultKind::Drop {
                duration: 100.0,
                probability: 0.5,
            },
            LinkDirection::ToVehicle,
            0.0,
        )]);
        let mut faulty = FaultyLink::new(plan, SimRng::seed_from_u64(42));
        for i in 0..50u16 {
            faulty.send(
                Endpoint::GroundStation,
                &Message::MissionRequest { seq: i },
                i as f64,
            );
        }
        let snap = LinkSnapshot::capture(&faulty);
        let mut resumed = snap.restore();
        // Both continue with the identical rng stream and queue state.
        for i in 50..100u16 {
            faulty.send(
                Endpoint::GroundStation,
                &Message::MissionRequest { seq: i },
                i as f64,
            );
            resumed.send(
                Endpoint::GroundStation,
                &Message::MissionRequest { seq: i },
                i as f64,
            );
        }
        assert_eq!(
            faulty.deliver(Endpoint::Vehicle, 100.0),
            resumed.deliver(Endpoint::Vehicle, 100.0)
        );
        assert_eq!(faulty.stats(), resumed.stats());
    }

    #[test]
    fn storm_dedup_survives_plan_substitution() {
        let storm = LinkFaultSpec::new(
            LinkFaultKind::Storm {
                command: StormCommand::Arm,
                count: 3,
            },
            LinkDirection::ToVehicle,
            1.0,
        );
        let base = LinkFaultPlan::from_specs(vec![storm]);
        let mut faulty = FaultyLink::new(base.clone(), SimRng::seed_from_u64(8));
        assert_eq!(faulty.deliver(Endpoint::Vehicle, 1.0).len(), 3);
        // Fork with an extended plan containing the same storm in its
        // prefix plus a later one: only the later one fires.
        let extended = base.with(LinkFaultSpec::new(
            LinkFaultKind::Storm {
                command: StormCommand::ReturnToLaunch,
                count: 2,
            },
            LinkDirection::ToVehicle,
            5.0,
        ));
        let mut forked = LinkSnapshot::capture(&faulty).into_restored_with_plan(extended);
        let got = forked.deliver(Endpoint::Vehicle, 6.0);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|m| matches!(
            m,
            Message::SetMode {
                mode: ProtocolMode::ReturnToLaunch
            }
        )));
    }

    #[test]
    fn snapshot_codec_round_trips_mid_stream_state() {
        // Exercise every queue: delayed frames, reorder buffers, fired
        // storms, consumed rng, and non-trivial stats.
        let plan = LinkFaultPlan::from_specs(vec![
            LinkFaultSpec::new(
                LinkFaultKind::Drop {
                    duration: 100.0,
                    probability: 0.5,
                },
                LinkDirection::ToVehicle,
                0.0,
            ),
            LinkFaultSpec::new(
                LinkFaultKind::Delay {
                    duration: 100.0,
                    seconds: 5.0,
                },
                LinkDirection::ToGcs,
                0.0,
            ),
            LinkFaultSpec::new(
                LinkFaultKind::Storm {
                    command: StormCommand::Arm,
                    count: 2,
                },
                LinkDirection::ToVehicle,
                1.0,
            ),
        ]);
        let mut faulty = FaultyLink::new(plan, SimRng::seed_from_u64(11));
        for i in 0..30u16 {
            faulty.send(
                Endpoint::GroundStation,
                &Message::MissionRequest { seq: i },
                i as f64 * 0.1,
            );
            faulty.send(Endpoint::Vehicle, &heartbeat(), i as f64 * 0.1);
        }
        faulty.deliver(Endpoint::Vehicle, 2.0);
        let snap = LinkSnapshot::capture(&faulty);

        let mut w = ByteWriter::new();
        snap.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = LinkSnapshot::decode(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");

        // Both shims continue bit-identically from the restore point.
        let mut a = snap.restore();
        let mut b = decoded.restore();
        assert_eq!(a.stats(), b.stats());
        for i in 30..60u16 {
            a.send(
                Endpoint::GroundStation,
                &Message::MissionRequest { seq: i },
                3.0 + i as f64 * 0.1,
            );
            b.send(
                Endpoint::GroundStation,
                &Message::MissionRequest { seq: i },
                3.0 + i as f64 * 0.1,
            );
        }
        assert_eq!(
            a.deliver(Endpoint::Vehicle, 20.0),
            b.deliver(Endpoint::Vehicle, 20.0)
        );
        assert_eq!(
            a.deliver(Endpoint::GroundStation, 20.0),
            b.deliver(Endpoint::GroundStation, 20.0)
        );
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            a.link().seq_gaps(Endpoint::Vehicle),
            b.link().seq_gaps(Endpoint::Vehicle)
        );
    }

    #[test]
    fn snapshot_decode_rejects_truncated_bytes() {
        let faulty = FaultyLink::passthrough();
        let snap = LinkSnapshot::capture(&faulty);
        let mut w = ByteWriter::new();
        snap.encode(&mut w);
        let bytes = w.into_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(LinkSnapshot::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn canonical_key_and_prefix_are_order_independent() {
        let a = drop_all(LinkDirection::ToVehicle, 1.0, 2.0);
        let b = LinkFaultSpec::new(
            LinkFaultKind::Storm {
                command: StormCommand::Arm,
                count: 4,
            },
            LinkDirection::ToGcs,
            3.0,
        );
        let p1 = LinkFaultPlan::from_specs(vec![a, b]);
        let p2 = LinkFaultPlan::from_specs(vec![b, a]);
        assert_eq!(p1, p2);
        assert_eq!(p1.canonical_key(), p2.canonical_key());
        assert_eq!(LinkFaultPlan::empty().canonical_key(), "");
        // Strictly-before prefix semantics, matching the sensor plan's.
        assert_eq!(p1.prefix_key(1.0), "");
        assert_eq!(p1.prefix_key(1.5), a.canonical_part());
        assert_eq!(
            p1.prefix_key(100.0),
            format!("{}|{}", a.canonical_part(), b.canonical_part())
        );
        assert_eq!(p1.fault_times(), vec![1.0, 3.0]);
    }
}
