//! `lint.toml` — the lint's rule-scoping configuration.
//!
//! The vendored workspace has no TOML crate, so this module includes a
//! minimal hand-rolled parser for the subset the config uses: `[table]`
//! and `[[array-of-table]]` headers, `key = "string"`,
//! `key = ["array", "of", "strings"]` (single- or multi-line) and
//! `key = true/false`. Anything else is a hard error — config drift
//! should fail loudly, not silently relax a rule.

use std::collections::BTreeMap;
use std::fmt;

/// A state-struct ↔ snapshot pair checked by rule S1.
#[derive(Debug, Clone)]
pub struct SnapshotPair {
    /// Name of the live state struct (e.g. `Simulator`).
    pub state: String,
    /// Name of the snapshot type (e.g. `SimSnapshot`), used in
    /// diagnostics only — the scan is file + function-name scoped.
    pub snapshot: String,
    /// Workspace-relative file that defines both.
    pub file: String,
    /// Function names whose bodies constitute the snapshot surface:
    /// every named field of `state` must be referenced in at least one
    /// of them (or carry a `// snapshot: skip(<reason>)` marker).
    pub functions: Vec<String>,
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Workspace-relative path prefixes never scanned (vendored code,
    /// build output, the lint's own deliberately-bad fixtures).
    pub exclude: Vec<String>,
    /// Crate directory names under `crates/` whose non-test code is in
    /// scope for D1 (banned nondeterminism APIs) and D2 (RNG hygiene).
    pub determinism_crates: Vec<String>,
    /// Extra identifiers banned by D1 on top of the built-in set.
    pub extra_banned: Vec<String>,
    /// Workspace-relative hot-path files where P1 denies bare
    /// `unwrap()` / `expect()`.
    pub hot_path_files: Vec<String>,
    /// Workspace-relative files sanctioned to call `catch_unwind` —
    /// everywhere else P2 flags it (panic containment must stay behind
    /// the audited boundary).
    pub containment_files: Vec<String>,
    /// State ↔ snapshot pairs for S1.
    pub pairs: Vec<SnapshotPair>,
}

/// A config-file error with its 1-based line.
#[derive(Debug, Clone)]
pub struct ConfigError {
    /// 1-based line in `lint.toml`.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// One parsed TOML value (the subset the config needs).
#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Array(Vec<String>),
}

/// One table: either `[name]` (at most once) or one element of
/// `[[name]]`.
type Table = BTreeMap<String, (Value, u32)>;

impl LintConfig {
    /// Parses `lint.toml` text.
    pub fn parse(text: &str) -> Result<LintConfig, ConfigError> {
        let (tables, arrays) = parse_tables(text)?;
        let mut config = LintConfig::default();

        if let Some(t) = tables.get("workspace") {
            config.exclude = take_array(t, "exclude")?.unwrap_or_default();
        }
        if let Some(t) = tables.get("rules.d1") {
            config.determinism_crates = take_array(t, "crates")?.unwrap_or_default();
            config.extra_banned = take_array(t, "extra_banned")?.unwrap_or_default();
        }
        if let Some(t) = tables.get("rules.p1") {
            config.hot_path_files = take_array(t, "files")?.unwrap_or_default();
        }
        if let Some(t) = tables.get("rules.p2") {
            config.containment_files = take_array(t, "files")?.unwrap_or_default();
        }
        for (table, line) in arrays.get("snapshot_pair").into_iter().flatten() {
            let field = |key: &str| -> Result<String, ConfigError> {
                match table.get(key) {
                    Some((Value::Str(s), _)) => Ok(s.clone()),
                    Some((_, l)) => Err(ConfigError {
                        line: *l,
                        message: format!("snapshot_pair `{key}` must be a string"),
                    }),
                    None => Err(ConfigError {
                        line: *line,
                        message: format!("snapshot_pair is missing `{key}`"),
                    }),
                }
            };
            let functions = take_array(table, "functions")?.unwrap_or_default();
            if functions.is_empty() {
                return Err(ConfigError {
                    line: *line,
                    message: "snapshot_pair needs a non-empty `functions` list".to_string(),
                });
            }
            config.pairs.push(SnapshotPair {
                state: field("state")?,
                snapshot: field("snapshot")?,
                file: field("file")?,
                functions,
            });
        }
        Ok(config)
    }
}

fn take_array(table: &Table, key: &str) -> Result<Option<Vec<String>>, ConfigError> {
    match table.get(key) {
        Some((Value::Array(items), _)) => Ok(Some(items.clone())),
        Some((_, line)) => Err(ConfigError {
            line: *line,
            message: format!("`{key}` must be an array of strings"),
        }),
        None => Ok(None),
    }
}

type Tables = BTreeMap<String, Table>;
type ArrayTables = BTreeMap<String, Vec<(Table, u32)>>;

fn parse_tables(text: &str) -> Result<(Tables, ArrayTables), ConfigError> {
    let mut tables: Tables = BTreeMap::new();
    let mut arrays: ArrayTables = BTreeMap::new();
    // (is_array_element, table name); top-level keys land in "".
    let mut current: (bool, String) = (false, String::new());
    tables.entry(String::new()).or_default();

    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let name = name.trim().to_string();
            arrays
                .entry(name.clone())
                .or_default()
                .push((Table::new(), lineno));
            current = (true, name);
        } else if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim().to_string();
            if tables.contains_key(&name) {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("table `[{name}]` defined twice"),
                });
            }
            tables.entry(name.clone()).or_default();
            current = (false, name);
        } else if let Some(eq) = line.find('=') {
            let key = line[..eq].trim().to_string();
            if key.is_empty() || !key.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unsupported key `{key}`"),
                });
            }
            let mut rhs = line[eq + 1..].trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets
            // balance. Strings in the config never contain brackets.
            while rhs.starts_with('[') && rhs.matches('[').count() > rhs.matches(']').count() {
                match lines.next() {
                    Some((_, more)) => {
                        rhs.push(' ');
                        rhs.push_str(strip_comment(more).trim());
                    }
                    None => {
                        return Err(ConfigError {
                            line: lineno,
                            message: "unterminated array".to_string(),
                        })
                    }
                }
            }
            let value = parse_value(&rhs, lineno)?;
            let table = match &current {
                (false, name) => tables.get_mut(name).expect("current table exists"),
                (true, name) => {
                    &mut arrays
                        .get_mut(name)
                        .and_then(|v| v.last_mut())
                        .expect("current array table exists")
                        .0
                }
            };
            if table.insert(key.clone(), (value, lineno)).is_some() {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("key `{key}` set twice in the same table"),
                });
            }
        } else {
            return Err(ConfigError {
                line: lineno,
                message: format!("unsupported syntax: `{line}`"),
            });
        }
    }
    Ok((tables, arrays))
}

/// Strips a `#` comment, respecting `"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(rhs: &str, line: u32) -> Result<Value, ConfigError> {
    let rhs = rhs.trim();
    if let Some(s) = parse_string(rhs) {
        return Ok(Value::Str(s));
    }
    if let Some(body) = rhs.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_string(part) {
                Some(s) => items.push(s),
                None => {
                    return Err(ConfigError {
                        line,
                        message: format!("array element `{part}` is not a string"),
                    })
                }
            }
        }
        return Ok(Value::Array(items));
    }
    Err(ConfigError {
        line,
        message: format!("unsupported value `{rhs}`"),
    })
}

/// Splits an array body on commas outside strings.
fn split_top_level(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_string = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                cur.push(c);
            }
            ',' if !in_string => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    parts.push(cur);
    parts
}

fn parse_string(s: &str) -> Option<String> {
    let body = s.strip_prefix('"')?.strip_suffix('"')?;
    // The config's strings are paths and identifiers; escapes are not
    // supported and embedded quotes were already rejected by the split.
    if body.contains('"') || body.contains('\\') {
        return None;
    }
    Some(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let text = r#"
# comment
[workspace]
exclude = ["vendor", "target"]

[rules.d1]
crates = ["core", "sim"]

[rules.p1]
files = [
    "crates/core/src/engine.rs",  # hot path
    "crates/core/src/runner.rs",
]

[rules.p2]
files = ["crates/core/src/contain.rs"]

[[snapshot_pair]]
state = "Simulator"
snapshot = "SimSnapshot"
file = "crates/sim/src/simulator.rs"
functions = ["snapshot", "diff", "apply"]

[[snapshot_pair]]
state = "Firmware"
snapshot = "FirmwareSnapshot"
file = "crates/firmware/src/firmware.rs"
functions = ["diff", "apply"]
"#;
        let config = LintConfig::parse(text).unwrap();
        assert_eq!(config.exclude, vec!["vendor", "target"]);
        assert_eq!(config.determinism_crates, vec!["core", "sim"]);
        assert_eq!(config.hot_path_files.len(), 2);
        assert_eq!(config.containment_files, vec!["crates/core/src/contain.rs"]);
        assert_eq!(config.pairs.len(), 2);
        assert_eq!(config.pairs[0].state, "Simulator");
        assert_eq!(config.pairs[1].functions, vec!["diff", "apply"]);
    }

    #[test]
    fn rejects_duplicate_tables_and_keys() {
        assert!(LintConfig::parse("[workspace]\n[workspace]\n").is_err());
        assert!(LintConfig::parse("[workspace]\nexclude = []\nexclude = []\n").is_err());
    }

    #[test]
    fn rejects_missing_pair_fields() {
        let text = "[[snapshot_pair]]\nstate = \"S\"\n";
        assert!(LintConfig::parse(text).is_err());
    }

    #[test]
    fn rejects_unsupported_syntax_loudly() {
        assert!(LintConfig::parse("merge conflict <<<<<<\n").is_err());
        assert!(LintConfig::parse("[rules.d1]\ncrates = [1, 2]\n").is_err());
    }
}
