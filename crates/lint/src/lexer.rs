//! A hand-rolled Rust lexer for lint-grade analysis.
//!
//! The vendored workspace has no `syn`/`proc-macro2`, so the lint works
//! on a token stream produced here instead of a real AST. The lexer is
//! comment-, string- and attribute-aware: banned identifiers inside
//! string literals or comments never produce findings, while comments
//! are kept (with line numbers) so suppression directives
//! (`// avis-lint: allow(...)`), `// SAFETY:` justifications and
//! `// snapshot: skip(...)` markers can be matched to the code they
//! annotate.
//!
//! The grammar subset is deliberately shallow — identifiers, punctuation
//! (one char per token), literals and comments — because every rule in
//! [`crate::rules`] is expressible as a scan over that stream plus brace
//! matching. No attempt is made to parse expressions.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `HashMap`, ...).
    Ident,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// A string/char/byte/numeric literal. The text of string literals
    /// is kept verbatim (including quotes) but never scanned for
    /// identifiers.
    Literal,
    /// A `// ...` comment, including doc comments. Text excludes the
    /// trailing newline.
    LineComment,
    /// A `/* ... */` comment (nesting handled), including doc comments.
    BlockComment,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// Whether this token is a comment of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is the identifier `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

/// Lexes `source` into a token stream. The lexer never fails: malformed
/// input (an unterminated string, say) is swallowed into the nearest
/// literal/comment token, which is the right degradation for a lint that
/// must not crash on in-progress code.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(line),
                _ => {
                    let c = self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(self.bump());
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push(self.bump());
                text.push(self.bump());
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push(self.bump());
                text.push(self.bump());
                if depth == 0 {
                    break;
                }
            } else {
                text.push(self.bump());
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    /// A `"..."` string with escape handling.
    fn string(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump()); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(self.bump());
                if self.peek(0).is_some() {
                    text.push(self.bump());
                }
            } else if c == '"' {
                text.push(self.bump());
                break;
            } else {
                text.push(self.bump());
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// A `r"..."` / `r#"..."#` raw string, starting at the `#`/`"` after
    /// the prefix identifier (already consumed into `text`).
    fn raw_string(&mut self, mut text: String, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push(self.bump());
        }
        if self.peek(0) == Some('"') {
            text.push(self.bump());
            'body: while self.peek(0).is_some() {
                let c = self.bump();
                text.push(c);
                if c == '"' {
                    for i in 0..hashes {
                        if self.peek(i) != Some('#') {
                            continue 'body;
                        }
                    }
                    for _ in 0..hashes {
                        text.push(self.bump());
                    }
                    break;
                }
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// Distinguishes `'a` (lifetime) from `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match next {
            Some(c) if c == '_' || c.is_alphabetic() => after != Some('\''),
            _ => false,
        };
        if is_lifetime {
            let mut text = String::new();
            text.push(self.bump()); // '
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(self.bump());
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            let mut text = String::new();
            text.push(self.bump()); // '
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    text.push(self.bump());
                    if self.peek(0).is_some() {
                        text.push(self.bump());
                    }
                } else if c == '\'' {
                    text.push(self.bump());
                    break;
                } else if c == '\n' {
                    break; // malformed; don't eat the rest of the file
                } else {
                    text.push(self.bump());
                }
            }
            self.push(TokenKind::Literal, text, line);
        }
    }

    /// A numeric literal; loose (suffixes and type markers are folded
    /// in, exponent signs are not) — rules never interpret numbers.
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let continues = c.is_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if continues {
                text.push(self.bump());
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// An identifier, or — when the identifier is a literal prefix
    /// (`r`, `b`, `br`, `c`, `cr`) directly followed by a quote or raw
    /// delimiter — the prefixed literal it introduces.
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(self.bump());
            } else {
                break;
            }
        }
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "cr", Some('"' | '#')) => self.raw_string(text, line),
            ("b" | "c", Some('"')) => {
                let mut t = text;
                t.push(self.bump());
                // Re-use the string scanner by inlining its loop.
                while let Some(c) = self.peek(0) {
                    if c == '\\' {
                        t.push(self.bump());
                        if self.peek(0).is_some() {
                            t.push(self.bump());
                        }
                    } else if c == '"' {
                        t.push(self.bump());
                        break;
                    } else {
                        t.push(self.bump());
                    }
                }
                self.push(TokenKind::Literal, t, line);
            }
            ("b", Some('\'')) => {
                let mut t = text;
                t.push(self.bump());
                while let Some(c) = self.peek(0) {
                    if c == '\\' {
                        t.push(self.bump());
                        if self.peek(0).is_some() {
                            t.push(self.bump());
                        }
                    } else if c == '\'' {
                        t.push(self.bump());
                        break;
                    } else if c == '\n' {
                        break;
                    } else {
                        t.push(self.bump());
                    }
                }
                self.push(TokenKind::Literal, t, line);
            }
            _ => self.push(TokenKind::Ident, text, line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_in_strings_and_comments_are_not_ident_tokens() {
        let toks = kinds(r#"let x = "HashMap"; // HashMap here"#);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x"]);
    }

    #[test]
    fn raw_strings_swallow_their_body() {
        let toks = kinds(r##"let s = r#"Instant::now() "quoted" body"#; done"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.starts_with("r#\"") && t.ends_with("\"#")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "done"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "Instant"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let chars = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Literal && t.starts_with('\''))
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = kinds("/* outer /* inner */ still outer */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[1].1 == "after");
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\nb\n/* c\nc */\nd";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text == text).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("d"), 7);
    }

    #[test]
    fn unsafe_code_is_one_ident_not_the_unsafe_keyword() {
        let toks = kinds("#![forbid(unsafe_code)]");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe_code"));
        assert!(!toks.iter().any(|(_, t)| t == "unsafe"));
    }
}
