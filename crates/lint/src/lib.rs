//! `avis-lint` — the workspace determinism lint.
//!
//! Every guarantee the Avis reproduction makes — bit-identical parallel
//! replay, cold ≡ checkpointed ≡ delta-chain ≡ sharded execution — is
//! otherwise enforced only dynamically, by determinism tests that must
//! happen to exercise a broken path. This crate makes the determinism
//! contract machine-checked: an offline, dependency-free static
//! analysis over a hand-rolled Rust token stream (no `syn` in the
//! vendored workspace) that walks all workspace crates and enforces
//! the rule set in [`rules`]:
//!
//! - **D1** — banned nondeterminism APIs (`HashMap`, `Instant`,
//!   `SystemTime`, `thread_rng`, `std::env`, ...) in non-test code of
//!   determinism-scoped crates;
//! - **D2** — RNG hygiene: `SimRng` only, no pointer-to-integer casts;
//! - **S1** — snapshot-field coverage: every named field of each
//!   configured state struct must be referenced in its snapshot
//!   functions or carry `// snapshot: skip(<reason>)`;
//! - **U1** — every `unsafe` needs `// SAFETY:`;
//! - **P1** — no bare `unwrap()` / `expect()` in hot-path modules.
//!
//! Findings honour inline suppression:
//! `// avis-lint: allow(<rule>, reason = "...")`. Scoping lives in
//! `lint.toml` at the workspace root. Run it as
//! `cargo run -p avis-lint --release -- --workspace`.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

use config::LintConfig;
use report::LintReport;
use rules::FileScope;
use source::SourceFile;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into, independent of config.
const ALWAYS_SKIPPED_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Lints the workspace rooted at `root` under `config`.
///
/// Scans every `*.rs` file below `root` except `target/`, `.git/` and
/// the config's `exclude` prefixes, then applies the per-file rules and
/// the cross-file snapshot-pair check.
pub fn run(root: &Path, config: &LintConfig) -> io::Result<LintReport> {
    let mut paths = Vec::new();
    collect_rust_files(root, root, config, &mut paths)?;
    paths.sort();

    let mut files: BTreeMap<String, SourceFile> = BTreeMap::new();
    for path in &paths {
        let text = std::fs::read_to_string(root.join(path))?;
        let rel = path.to_string_lossy().replace('\\', "/");
        files.insert(rel.clone(), SourceFile::new(&rel, &text));
    }

    let mut lint_report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    for file in files.values() {
        let scope = FileScope::for_path(&file.rel_path, config);
        rules::check_file(file, scope, config, &mut lint_report);
    }
    rules::check_snapshot_pairs(&files, config, &mut lint_report);
    lint_report.finalize();
    Ok(lint_report)
}

/// Recursively collects workspace-relative `*.rs` paths.
fn collect_rust_files(
    root: &Path,
    dir: &Path,
    config: &LintConfig,
    out: &mut Vec<PathBuf>,
) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let rel = path
            .strip_prefix(root)
            .expect("walk stays under root")
            .to_string_lossy()
            .replace('\\', "/");
        if is_excluded(&rel, config) {
            continue;
        }
        if path.is_dir() {
            collect_rust_files(root, &path, config, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(PathBuf::from(rel));
        }
    }
    Ok(())
}

/// Whether the workspace-relative path `rel` is out of scope.
fn is_excluded(rel: &str, config: &LintConfig) -> bool {
    let name = rel.rsplit('/').next().unwrap_or(rel);
    if ALWAYS_SKIPPED_DIRS.contains(&name) || name.starts_with('.') {
        return true;
    }
    config
        .exclude
        .iter()
        .any(|prefix| rel == prefix || rel.starts_with(&format!("{prefix}/")))
}
