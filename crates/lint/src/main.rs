//! The `avis-lint` CLI.
//!
//! ```text
//! avis-lint --workspace [--root DIR] [--config FILE] [--json FILE] [--quiet]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage/config error.

#![forbid(unsafe_code)]

use avis_lint::config::LintConfig;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: avis-lint --workspace [--root DIR] [--config FILE] [--json FILE] [--quiet]\n\
     \n\
     Lints the Avis workspace for determinism hazards (rules d1/d2/s1/u1/p1/p2).\n\
     Configuration is read from lint.toml at the workspace root (or --config).\n\
     --json writes the machine-readable report to FILE.\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: None,
        quiet: false,
    };
    let mut saw_workspace = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workspace" => saw_workspace = true,
            "--quiet" => args.quiet = true,
            "--root" => {
                args.root = PathBuf::from(
                    argv.next()
                        .ok_or_else(|| "--root needs a value".to_string())?,
                )
            }
            "--config" => {
                args.config = Some(PathBuf::from(
                    argv.next()
                        .ok_or_else(|| "--config needs a value".to_string())?,
                ))
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    argv.next()
                        .ok_or_else(|| "--json needs a value".to_string())?,
                ))
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !saw_workspace {
        return Err("the only supported mode is --workspace".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("avis-lint: {message}");
            }
            eprint!("{}", usage());
            return ExitCode::from(2);
        }
    };

    // Walk up from --root to the directory holding lint.toml, so the
    // binary works from any workspace subdirectory (as `cargo run -p`
    // does from crate dirs).
    let (root, config_path) = match &args.config {
        Some(path) => (args.root.clone(), path.clone()),
        None => {
            let mut dir = match args.root.canonicalize() {
                Ok(dir) => dir,
                Err(err) => {
                    eprintln!("avis-lint: --root {}: {err}", args.root.display());
                    return ExitCode::from(2);
                }
            };
            loop {
                let candidate = dir.join("lint.toml");
                if candidate.is_file() {
                    break (dir.clone(), candidate);
                }
                if !dir.pop() {
                    eprintln!(
                        "avis-lint: no lint.toml found walking up from {}",
                        args.root.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("avis-lint: {}: {err}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match LintConfig::parse(&config_text) {
        Ok(config) => config,
        Err(err) => {
            eprintln!("avis-lint: {err}");
            return ExitCode::from(2);
        }
    };

    let report = match avis_lint::run(&root, &config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("avis-lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };

    if let Some(json_path) = &args.json {
        let doc = report.to_json().to_pretty();
        if let Err(err) = std::fs::write(json_path, doc) {
            eprintln!("avis-lint: writing {}: {err}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if !args.quiet || report.has_violations() {
        print!("{}", report.render_text());
    }
    if report.has_violations() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
