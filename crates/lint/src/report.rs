//! Diagnostics and report rendering: human-readable `file:line` output
//! plus a machine-readable JSON document built on the workspace's own
//! dependency-free [`avis::json`].

use avis::json::{object, Json};

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`d1`, `d2`, `s1`, `u1`, `p1`, or `lint` for problems
    /// with the lint's own inputs — malformed suppressions, config
    /// drift).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the finding.
    pub message: String,
}

/// One suppressed finding (kept for the report so reviewers can audit
/// every active `allow`).
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The finding that would have fired.
    pub diagnostic: Diagnostic,
    /// The justification given in the allow directive.
    pub reason: String,
}

/// The result of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations, in (file, line, rule) order.
    pub violations: Vec<Diagnostic>,
    /// Findings silenced by an `avis-lint: allow(...)` directive.
    pub suppressed: Vec<Suppressed>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Snapshot-pair fields accepted via `// snapshot: skip(...)`.
    pub snapshot_skips: Vec<(String, String, String)>, // (file, field, reason)
}

impl LintReport {
    /// Sorts findings into a stable presentation order.
    pub fn finalize(&mut self) {
        let key = |d: &Diagnostic| (d.file.clone(), d.line, d.rule);
        self.violations.sort_by_key(key);
        self.suppressed.sort_by_key(|s| key(&s.diagnostic));
    }

    /// Whether the run should exit non-zero.
    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Renders the human-readable diagnostics.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                d.file, d.line, d.rule, d.message
            ));
        }
        out.push_str(&format!(
            "avis-lint: {} file(s) scanned, {} violation(s), {} suppression(s) in effect\n",
            self.files_scanned,
            self.violations.len(),
            self.suppressed.len()
        ));
        out
    }

    /// Builds the machine-readable report document.
    pub fn to_json(&self) -> Json {
        let diag = |d: &Diagnostic| {
            object(vec![
                ("rule", Json::String(d.rule.to_string())),
                ("file", Json::String(d.file.clone())),
                ("line", Json::Number(d.line as f64)),
                ("message", Json::String(d.message.clone())),
            ])
        };
        object(vec![
            ("tool", Json::String("avis-lint".to_string())),
            ("files_scanned", Json::Number(self.files_scanned as f64)),
            (
                "violations",
                Json::Array(self.violations.iter().map(diag).collect()),
            ),
            (
                "suppressed",
                Json::Array(
                    self.suppressed
                        .iter()
                        .map(|s| {
                            let mut fields = match diag(&s.diagnostic) {
                                Json::Object(fields) => fields,
                                _ => unreachable!("diag builds an object"),
                            };
                            fields.push(("reason".to_string(), Json::String(s.reason.clone())));
                            Json::Object(fields)
                        })
                        .collect(),
                ),
            ),
            (
                "snapshot_skips",
                Json::Array(
                    self.snapshot_skips
                        .iter()
                        .map(|(file, field, reason)| {
                            object(vec![
                                ("file", Json::String(file.clone())),
                                ("field", Json::String(field.clone())),
                                ("reason", Json::String(reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}
