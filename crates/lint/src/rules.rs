//! The rule set.
//!
//! | id | rule |
//! |----|------|
//! | `d1` | banned nondeterminism APIs in determinism-scoped crates |
//! | `d2` | RNG hygiene: `SimRng` only, no pointer-to-integer casts |
//! | `s1` | snapshot-field coverage for configured state ↔ snapshot pairs |
//! | `u1` | every `unsafe` needs a `// SAFETY:` justification |
//! | `p1` | no bare `unwrap()` / `expect()` in hot-path modules |
//! | `p2` | `catch_unwind` only inside the sanctioned containment module |
//! | `lint` | the lint's own inputs are broken (malformed suppression, config drift) |
//!
//! Every rule except `lint` honours inline suppressions of the form
//! `// avis-lint: allow(<rule>, reason = "...")` on the finding's line
//! or the line directly above.

use crate::config::{LintConfig, SnapshotPair};
use crate::lexer::TokenKind;
use crate::report::{Diagnostic, LintReport, Suppressed};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Identifiers banned outright by D1 in determinism-scoped crates, with
/// the replacement the diagnostic suggests.
const D1_BANNED: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is seeded per-process; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order is seeded per-process; use BTreeSet",
    ),
    (
        "RandomState",
        "per-process hash seeding; use ordered collections",
    ),
    (
        "DefaultHasher",
        "per-process hash seeding; use ordered collections",
    ),
    (
        "Instant",
        "wall-clock time diverges across replays; use the simulation clock",
    ),
    (
        "SystemTime",
        "wall-clock time diverges across replays; use the simulation clock",
    ),
    (
        "thread_rng",
        "OS-entropy RNG; use avis_sim::SimRng seeded from the experiment",
    ),
];

/// RNG types/constructors banned by D2 — anything that is not the
/// experiment-seeded `SimRng`.
const D2_BANNED_RNG: &[&str] = &[
    "ThreadRng",
    "StdRng",
    "SmallRng",
    "OsRng",
    "from_entropy",
    "getrandom",
];

/// Integer types that turn a pointer into an address when used with
/// `as` (the D2 pointer-cast check).
const INT_TYPES: &[&str] = &["usize", "u64", "u32", "u128", "isize", "i64", "i32", "i128"];

/// Which rules apply to one file.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileScope {
    /// D1 + D2 (determinism-scoped crate, non-test code).
    pub determinism: bool,
    /// P1 (hot-path module).
    pub hot_path: bool,
    /// P2 exemption: this file is a sanctioned panic-containment
    /// boundary, allowed to call `catch_unwind`.
    pub containment: bool,
}

impl FileScope {
    /// Derives the scope of `rel_path` from the config.
    pub fn for_path(rel_path: &str, config: &LintConfig) -> FileScope {
        let determinism = config
            .determinism_crates
            .iter()
            .any(|c| rel_path.starts_with(&format!("crates/{c}/src/")));
        let hot_path = config.hot_path_files.iter().any(|f| f == rel_path);
        let containment = config.containment_files.iter().any(|f| f == rel_path);
        FileScope {
            determinism,
            hot_path,
            containment,
        }
    }
}

/// Emits a finding, routing it to `violations` or `suppressed`.
fn emit(
    report: &mut LintReport,
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
) {
    let diagnostic = Diagnostic {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
    };
    match file.suppression(rule, line) {
        Some(allow) => report.suppressed.push(Suppressed {
            diagnostic,
            reason: allow.reason.clone(),
        }),
        None => report.violations.push(diagnostic),
    }
}

/// Runs every per-file rule on `file`.
pub fn check_file(
    file: &SourceFile,
    scope: FileScope,
    config: &LintConfig,
    report: &mut LintReport,
) {
    for m in &file.malformed {
        report.violations.push(Diagnostic {
            rule: "lint",
            file: file.rel_path.clone(),
            line: m.line,
            message: format!("malformed avis-lint directive: {}", m.message),
        });
    }
    if scope.determinism {
        check_d1(file, config, report);
        check_d2(file, report);
    }
    check_u1(file, report);
    if scope.hot_path {
        check_p1(file, report);
    }
    if !scope.containment {
        check_p2(file, report);
    }
}

/// D1 — banned nondeterminism APIs in non-test code.
fn check_d1(file: &SourceFile, config: &LintConfig, report: &mut LintReport) {
    let sig = &file.sig;
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        if let Some((name, why)) = D1_BANNED.iter().find(|(n, _)| t.is_ident(n)) {
            emit(
                report,
                file,
                "d1",
                t.line,
                format!("banned nondeterministic API `{name}`: {why}"),
            );
            continue;
        }
        if config.extra_banned.iter().any(|n| t.is_ident(n)) {
            emit(
                report,
                file,
                "d1",
                t.line,
                format!("banned API `{}` (lint.toml extra_banned)", t.text),
            );
            continue;
        }
        // `std::env` — process environment is host state (time zones,
        // locales, entropy-seeded vars) the replay engine cannot pin.
        if t.is_ident("env")
            && i >= 3
            && sig[i - 1].is_punct(':')
            && sig[i - 2].is_punct(':')
            && sig[i - 3].is_ident("std")
        {
            emit(
                report,
                file,
                "d1",
                t.line,
                "banned module `std::env`: process environment is host state; \
                 thread configuration through ExperimentConfig"
                    .to_string(),
            );
        }
    }
}

/// D2 — RNG hygiene: only `SimRng`, and no pointer-to-integer casts
/// (addresses vary run to run; feeding them into hashes, keys or
/// ordering silently breaks bit-identical replay).
fn check_d2(file: &SourceFile, report: &mut LintReport) {
    let sig = &file.sig;
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        if D2_BANNED_RNG.iter().any(|n| t.is_ident(n)) {
            emit(
                report,
                file,
                "d2",
                t.line,
                format!(
                    "non-deterministic RNG `{}`: the only RNG allowed in \
                     determinism-scoped crates is avis_sim::SimRng",
                    t.text
                ),
            );
            continue;
        }
        if t.is_ident("as_ptr") || t.is_ident("as_mut_ptr") {
            // Scan to the end of the statement for `as <int>`.
            let mut j = i + 1;
            while j < sig.len() {
                let u = &sig[j];
                if u.is_punct(';') || u.is_punct('{') || u.is_punct('}') {
                    break;
                }
                if u.is_ident("as")
                    && j + 1 < sig.len()
                    && INT_TYPES.iter().any(|ty| sig[j + 1].is_ident(ty))
                {
                    emit(
                        report,
                        file,
                        "d2",
                        u.line,
                        format!(
                            "pointer-to-integer cast (`{}` ... as {}): addresses \
                             differ across processes; never feed them into hashes, \
                             keys or ordering",
                            t.text,
                            sig[j + 1].text
                        ),
                    );
                    break;
                }
                j += 1;
            }
        }
    }
}

/// U1 — every `unsafe` block/fn/impl/trait needs a `// SAFETY:` comment
/// on the same line or in the comment block directly above.
fn check_u1(file: &SourceFile, report: &mut LintReport) {
    for t in &file.sig {
        if !t.is_ident("unsafe") {
            continue;
        }
        let justified = file
            .comments_around(t.line)
            .iter()
            .any(|c| c.contains("SAFETY:"));
        if !justified {
            emit(
                report,
                file,
                "u1",
                t.line,
                "`unsafe` without a `// SAFETY:` comment explaining why the \
                 invariants hold"
                    .to_string(),
            );
        }
    }
}

/// P1 — bare `unwrap()` / `expect()` in hot-path modules (non-test
/// code). Panics in the engine/runner/snapshot path abort whole
/// campaigns; use typed errors, or allow with the invariant spelled out.
fn check_p1(file: &SourceFile, report: &mut LintReport) {
    let sig = &file.sig;
    for (i, t) in sig.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        let is_call = (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && sig[i - 1].is_punct('.')
            && i + 1 < sig.len()
            && sig[i + 1].is_punct('(');
        if is_call {
            emit(
                report,
                file,
                "p1",
                t.line,
                format!(
                    "`{}()` in a hot-path module: a panic here aborts the whole \
                     campaign; return a typed error or justify with \
                     `// avis-lint: allow(p1, reason = \"...\")`",
                    t.text
                ),
            );
        }
    }
}

/// P2 — `catch_unwind` outside the sanctioned containment module
/// (non-test code). Ad-hoc unwinding swallows panics without the
/// cache-quarantine and hook-suppression discipline the containment
/// boundary provides; route panic isolation through it instead.
fn check_p2(file: &SourceFile, report: &mut LintReport) {
    for t in &file.sig {
        if !t.is_ident("catch_unwind") || file.is_test_line(t.line) {
            continue;
        }
        emit(
            report,
            file,
            "p2",
            t.line,
            "`catch_unwind` outside the sanctioned containment module: \
             swallowing a panic here skips snapshot quarantine and panic-hook \
             suppression; route it through the containment boundary (lint.toml \
             [rules.p2] files)"
                .to_string(),
        );
    }
}

/// S1 — snapshot-field coverage over the configured state ↔ snapshot
/// pairs. Config drift (missing file/struct/function) is itself a
/// violation: a silently skipped pair would defeat the rule.
pub fn check_snapshot_pairs(
    files: &BTreeMap<String, SourceFile>,
    config: &LintConfig,
    report: &mut LintReport,
) {
    for pair in &config.pairs {
        check_pair(files, pair, report);
    }
}

fn check_pair(files: &BTreeMap<String, SourceFile>, pair: &SnapshotPair, report: &mut LintReport) {
    let Some(file) = files.get(&pair.file) else {
        report.violations.push(Diagnostic {
            rule: "lint",
            file: pair.file.clone(),
            line: 1,
            message: format!(
                "lint.toml snapshot_pair `{}` ↔ `{}` points at a file that was \
                 not scanned",
                pair.state, pair.snapshot
            ),
        });
        return;
    };
    let Some(fields) = file.struct_fields(&pair.state) else {
        report.violations.push(Diagnostic {
            rule: "lint",
            file: pair.file.clone(),
            line: 1,
            message: format!(
                "snapshot_pair state struct `{}` not found (renamed? update lint.toml)",
                pair.state
            ),
        });
        return;
    };
    let mut ranges = Vec::new();
    for name in &pair.functions {
        let bodies = file.fn_bodies(name);
        if bodies.is_empty() {
            report.violations.push(Diagnostic {
                rule: "lint",
                file: pair.file.clone(),
                line: 1,
                message: format!(
                    "snapshot_pair `{}` lists function `{name}` but the file \
                     defines none (renamed? update lint.toml)",
                    pair.state
                ),
            });
        }
        ranges.extend(bodies);
    }
    for (field, line) in &fields {
        if file.ranges_reference_ident(&ranges, field) {
            continue;
        }
        match skip_marker(file, *line) {
            Some(reason) => {
                report.snapshot_skips.push((
                    pair.file.clone(),
                    format!("{}::{field}", pair.state),
                    reason,
                ));
            }
            None => emit(
                report,
                file,
                "s1",
                *line,
                format!(
                    "field `{}::{field}` is not referenced in any snapshot \
                     function of `{}` ({}); snapshot it or mark it \
                     `// snapshot: skip(<reason>)`",
                    pair.state,
                    pair.snapshot,
                    pair.functions.join("/")
                ),
            ),
        }
    }
}

/// Parses a `// snapshot: skip(<reason>)` marker attached to `line`,
/// returning the reason. Empty reasons do not count.
fn skip_marker(file: &SourceFile, line: u32) -> Option<String> {
    for comment in file.comments_around(line) {
        let Some(at) = comment.find("snapshot:") else {
            continue;
        };
        let rest = comment[at + "snapshot:".len()..].trim_start();
        let Some(body) = rest.strip_prefix("skip") else {
            continue;
        };
        let body = body.trim_start();
        if let Some(open) = body.strip_prefix('(') {
            if let Some(close) = open.rfind(')') {
                let reason = open[..close].trim();
                if !reason.is_empty() {
                    return Some(reason.to_string());
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(rel: &str, src: &str, scope: FileScope) -> LintReport {
        let config = LintConfig::default();
        let file = SourceFile::new(rel, src);
        let mut report = LintReport::default();
        check_file(&file, scope, &config, &mut report);
        report.finalize();
        report
    }

    const DET: FileScope = FileScope {
        determinism: true,
        hot_path: false,
        containment: false,
    };

    #[test]
    fn d1_fires_on_hashmap_but_not_in_tests_or_strings() {
        let src = "use std::collections::HashMap;\nfn f() { let s = \"HashMap\"; }\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let report = lint_one("crates/core/src/x.rs", src, DET);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].line, 1);
        assert_eq!(report.violations[0].rule, "d1");
    }

    #[test]
    fn d1_std_env_needs_the_full_path() {
        let src = "fn f(env: &Env) { let _ = std::env::var(\"X\"); g(env); }\n";
        let report = lint_one("crates/core/src/x.rs", src, DET);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    }

    #[test]
    fn d2_ptr_cast_fires_and_allow_suppresses() {
        let bad = "fn f(v: &[u8]) -> usize { v.as_ptr() as usize }\n";
        let report = lint_one("crates/sim/src/x.rs", bad, DET);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "d2");

        let ok = "fn f(v: &[u8]) -> usize {\n    // avis-lint: allow(d2, reason = \"chunk identity for memory accounting only\")\n    v.as_ptr() as usize\n}\n";
        let report = lint_one("crates/sim/src/x.rs", ok, DET);
        assert!(report.violations.is_empty());
        assert_eq!(report.suppressed.len(), 1);
    }

    #[test]
    fn u1_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let report = lint_one("crates/core/src/x.rs", bad, FileScope::default());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "u1");

        let ok = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        let report = lint_one("crates/core/src/x.rs", ok, FileScope::default());
        assert!(report.violations.is_empty());
    }

    #[test]
    fn p1_fires_only_in_hot_path_scope_and_skips_tests() {
        let src =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n#[test]\nfn t() { Some(1).unwrap(); }\n";
        let hot = FileScope {
            hot_path: true,
            ..FileScope::default()
        };
        let report = lint_one("crates/core/src/engine.rs", src, hot);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].line, 1);
        let report = lint_one("crates/core/src/engine.rs", src, FileScope::default());
        assert!(report.violations.is_empty());
    }

    #[test]
    fn p2_fires_everywhere_except_the_containment_scope_and_tests() {
        let src = "fn f() { let _ = std::panic::catch_unwind(|| {}); }\n\
                   #[test]\nfn t() { let _ = std::panic::catch_unwind(|| {}); }\n";
        let report = lint_one("crates/core/src/x.rs", src, FileScope::default());
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].rule, "p2");
        assert_eq!(report.violations[0].line, 1);

        let sanctioned = FileScope {
            containment: true,
            ..FileScope::default()
        };
        let report = lint_one("crates/core/src/contain.rs", src, sanctioned);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn p2_scope_derives_from_the_config() {
        let mut config = LintConfig::default();
        config
            .containment_files
            .push("crates/core/src/contain.rs".to_string());
        assert!(FileScope::for_path("crates/core/src/contain.rs", &config).containment);
        assert!(!FileScope::for_path("crates/core/src/engine.rs", &config).containment);
    }

    #[test]
    fn s1_catches_uncovered_field_and_accepts_skip_marker() {
        let src = "pub struct State {\n    a: u8,\n    b: u8,\n    /// doc\n    // snapshot: skip(derived cache, rebuilt on restore)\n    c: u8,\n}\nimpl Snap {\n    fn diff(&self, prev: &Snap) -> D { D { a: self.a } }\n}\n";
        let mut files = BTreeMap::new();
        files.insert(
            "crates/x/src/s.rs".to_string(),
            SourceFile::new("crates/x/src/s.rs", src),
        );
        let mut config = LintConfig::default();
        config.pairs.push(SnapshotPair {
            state: "State".to_string(),
            snapshot: "Snap".to_string(),
            file: "crates/x/src/s.rs".to_string(),
            functions: vec!["diff".to_string()],
        });
        let mut report = LintReport::default();
        check_snapshot_pairs(&files, &config, &mut report);
        report.finalize();
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].message.contains("State::b"));
        assert_eq!(report.snapshot_skips.len(), 1);
        assert_eq!(report.snapshot_skips[0].1, "State::c");
    }

    #[test]
    fn s1_config_drift_is_loud() {
        let mut config = LintConfig::default();
        config.pairs.push(SnapshotPair {
            state: "Gone".to_string(),
            snapshot: "GoneSnap".to_string(),
            file: "crates/x/src/s.rs".to_string(),
            functions: vec!["diff".to_string()],
        });
        let mut files = BTreeMap::new();
        files.insert(
            "crates/x/src/s.rs".to_string(),
            SourceFile::new("crates/x/src/s.rs", "pub struct Other {}\n"),
        );
        let mut report = LintReport::default();
        check_snapshot_pairs(&files, &config, &mut report);
        assert!(report
            .violations
            .iter()
            .any(|d| d.rule == "lint" && d.message.contains("Gone")));
    }
}
