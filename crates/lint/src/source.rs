//! Per-file analysis context built on top of the lexer: the significant
//! (non-comment) token stream, per-line comments, `#[cfg(test)]` /
//! `#[test]` region detection, suppression directives and the struct /
//! function extraction primitives the rules share.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// A suppression parsed from `// avis-lint: allow(<rules>, reason = "...")`.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule ids named by the directive (lower-cased).
    pub rules: Vec<String>,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line the directive is written on. It suppresses findings
    /// on its own line and on the following line (for directives placed
    /// on their own line above the code they annotate).
    pub line: u32,
}

/// A `// avis-lint:` comment that could not be parsed. Reported as a
/// violation: a suppression that silently fails to suppress is worse
/// than a loud one.
#[derive(Debug, Clone)]
pub struct MalformedDirective {
    /// 1-based line of the broken comment.
    pub line: u32,
    /// Parse failure description.
    pub message: String,
}

/// One scanned source file.
pub struct SourceFile {
    /// Workspace-relative path (`/`-separated).
    pub rel_path: String,
    /// Significant (non-comment) tokens.
    pub sig: Vec<Token>,
    /// All comment tokens keyed by starting line.
    pub comments: BTreeMap<u32, Vec<String>>,
    /// Lines covered by `#[cfg(test)]` items or `#[test]` functions.
    pub test_lines: BTreeSet<u32>,
    /// Parsed suppression directives.
    pub allows: Vec<AllowDirective>,
    /// `avis-lint:` comments that failed to parse.
    pub malformed: Vec<MalformedDirective>,
    /// Last line of the file (for region bookkeeping).
    pub last_line: u32,
}

impl SourceFile {
    /// Lexes `text` and builds the analysis context.
    pub fn new(rel_path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let mut sig = Vec::new();
        let mut comments: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        let mut allows = Vec::new();
        let mut malformed = Vec::new();
        let mut last_line = 1;
        for token in tokens {
            last_line = last_line.max(token.line);
            if token.is_comment() {
                match parse_allow(&token) {
                    Ok(Some(allow)) => allows.push(allow),
                    Ok(None) => {}
                    Err(message) => malformed.push(MalformedDirective {
                        line: token.line,
                        message,
                    }),
                }
                comments.entry(token.line).or_default().push(token.text);
            } else {
                sig.push(token);
            }
        }
        let test_lines = find_test_lines(&sig);
        SourceFile {
            rel_path: rel_path.to_string(),
            sig,
            comments,
            test_lines,
            allows,
            malformed,
            last_line,
        }
    }

    /// Whether `line` lies in test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// Whether a finding of `rule` at `line` is suppressed by an allow
    /// directive, returning its reason.
    pub fn suppression(&self, rule: &str, line: u32) -> Option<&AllowDirective> {
        self.allows
            .iter()
            .find(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }

    /// All comment text attached to `line`: trailing comments on the
    /// line itself plus the contiguous comment block directly above.
    pub fn comments_around(&self, line: u32) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        let mut probe = line;
        // Walk the contiguous comment block upward.
        while probe > 0 {
            probe -= 1;
            match self.comments.get(&probe) {
                Some(texts) => out.extend(texts.iter().map(String::as_str)),
                None => break,
            }
        }
        if let Some(texts) = self.comments.get(&line) {
            out.extend(texts.iter().map(String::as_str));
        }
        out
    }

    /// Extracts the named fields of `struct name { ... }`, with lines.
    /// Returns `None` if the struct is missing or not brace-style.
    pub fn struct_fields(&self, name: &str) -> Option<Vec<(String, u32)>> {
        let sig = &self.sig;
        let mut i = 0;
        while i + 1 < sig.len() {
            if sig[i].is_ident("struct") && sig[i + 1].is_ident(name) {
                // Skip generics / where clause up to the body brace; a
                // `;` first means a tuple/unit struct.
                let mut j = i + 2;
                let mut angle = 0i32;
                while j < sig.len() {
                    let t = &sig[j];
                    if t.is_punct('<') {
                        angle += 1;
                    } else if t.is_punct('>') {
                        angle -= 1;
                    } else if t.is_punct(';') && angle == 0 {
                        return Some(Vec::new());
                    } else if t.is_punct('{') && angle == 0 {
                        return Some(collect_fields(sig, j));
                    }
                    j += 1;
                }
                return None;
            }
            i += 1;
        }
        None
    }

    /// The index ranges (into `sig`) of the bodies of every function
    /// named `name` in this file.
    pub fn fn_bodies(&self, name: &str) -> Vec<(usize, usize)> {
        let sig = &self.sig;
        let mut out = Vec::new();
        let mut i = 0;
        while i + 1 < sig.len() {
            if sig[i].is_ident("fn") && sig[i + 1].is_ident(name) {
                if let Some((open, close)) = next_brace_block(sig, i + 2) {
                    out.push((open, close));
                    i = close;
                }
            }
            i += 1;
        }
        out
    }

    /// Whether identifier `ident` occurs anywhere inside any of the
    /// given `sig` ranges.
    pub fn ranges_reference_ident(&self, ranges: &[(usize, usize)], ident: &str) -> bool {
        ranges.iter().any(|&(start, end)| {
            self.sig[start..=end]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == ident)
        })
    }
}

/// Collects `name: Type` fields from a struct body opening at `sig[open]`.
fn collect_fields(sig: &[Token], open: usize) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let mut depth = 0i32; // (), [], {} nesting inside the body
    let mut angle = 0i32;
    let mut at_field_start = true;
    let mut i = open + 1;
    while i < sig.len() {
        let t = &sig[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if t.is_punct(',') && angle <= 0 {
                at_field_start = true;
                angle = 0;
                i += 1;
                continue;
            } else if at_field_start && t.kind == TokenKind::Ident {
                // `pub` / `pub(crate)` and attributes ride ahead of the
                // name; the name is the ident directly followed by `:`
                // (but not `::`).
                if !matches!(t.text.as_str(), "pub" | "crate" | "in")
                    && i + 1 < sig.len()
                    && sig[i + 1].is_punct(':')
                    && !(i + 2 < sig.len() && sig[i + 2].is_punct(':'))
                {
                    fields.push((t.text.clone(), t.line));
                    at_field_start = false;
                }
            }
        }
        i += 1;
    }
    fields
}

/// Finds the first `{ ... }` block at paren/bracket depth 0 starting at
/// `sig[from]`, returning (open, close) indices. Stops at a top-level
/// `;` (no body, e.g. a trait method signature).
fn next_brace_block(sig: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut i = from;
    while i < sig.len() {
        let t = &sig[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            return None;
        } else if t.is_punct('{') && depth == 0 {
            let mut braces = 1i32;
            let open = i;
            i += 1;
            while i < sig.len() {
                let u = &sig[i];
                if u.is_punct('{') {
                    braces += 1;
                } else if u.is_punct('}') {
                    braces -= 1;
                    if braces == 0 {
                        return Some((open, i));
                    }
                }
                i += 1;
            }
            return Some((open, sig.len() - 1));
        }
        i += 1;
    }
    None
}

/// Marks the line spans of `#[cfg(test)]` items and `#[test]` functions.
fn find_test_lines(sig: &[Token]) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].is_punct('#') && i + 1 < sig.len() && sig[i + 1].is_punct('[') {
            let (attr_end, is_test_attr) = scan_attribute(sig, i + 1);
            if is_test_attr {
                let start_line = sig[i].line;
                // Skip any further attributes between this one and the
                // item it decorates.
                let mut j = attr_end + 1;
                while j + 1 < sig.len() && sig[j].is_punct('#') && sig[j + 1].is_punct('[') {
                    let (end, _) = scan_attribute(sig, j + 1);
                    j = end + 1;
                }
                let end_line = match next_brace_block(sig, j) {
                    Some((_, close)) => sig[close].line,
                    // Item without a body (`#[cfg(test)] use ...;`):
                    // mark through the terminating `;`.
                    None => {
                        let mut k = j;
                        while k < sig.len() && !sig[k].is_punct(';') {
                            k += 1;
                        }
                        sig.get(k).map_or(start_line, |t| t.line)
                    }
                };
                lines.extend(start_line..=end_line);
                i = attr_end;
            } else {
                i = attr_end;
            }
        }
        i += 1;
    }
    lines
}

/// Scans the `[...]` attribute group opening at `sig[open_bracket]`;
/// returns (index of closing `]`, whether it is `test` / `cfg(test)`).
fn scan_attribute(sig: &[Token], open_bracket: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut idents = Vec::new();
    let mut i = open_bracket;
    while i < sig.len() {
        let t = &sig[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident {
            idents.push(t.text.as_str());
        }
        i += 1;
    }
    let is_test = idents == ["test"] || (idents.len() == 2 && idents == ["cfg", "test"]);
    (i, is_test)
}

/// Parses an `avis-lint:` comment. `Ok(None)` when the comment is not a
/// directive at all. Only plain `//` line comments carry directives —
/// doc comments (`///`, `//!`) and block comments merely *describe* the
/// syntax, so they are never parsed as directives.
fn parse_allow(token: &Token) -> Result<Option<AllowDirective>, String> {
    if token.kind != TokenKind::LineComment {
        return Ok(None);
    }
    let text = &token.text;
    if text.starts_with("///") || text.starts_with("//!") {
        return Ok(None);
    }
    let Some(at) = text.find("avis-lint:") else {
        return Ok(None);
    };
    let rest = text[at + "avis-lint:".len()..].trim();
    let Some(body) = rest.strip_prefix("allow") else {
        return Err(format!(
            "expected `allow(...)` after `avis-lint:`, found `{rest}`"
        ));
    };
    let body = body.trim_start();
    let Some(open) = body.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(close) = open.rfind(')') else {
        return Err("unterminated `allow(`".to_string());
    };
    let inner = &open[..close];
    // The reason is free text (commas included), so split the rule list
    // off at the `reason` key rather than naively on commas.
    let (rules_part, reason_part) = match inner.find("reason") {
        Some(pos) => (&inner[..pos], Some(&inner[pos + "reason".len()..])),
        None => (inner, None),
    };
    let mut rules = Vec::new();
    for part in rules_part.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if !part
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!("`{part}` is not a rule id"));
        }
        rules.push(part.to_ascii_lowercase());
    }
    if rules.is_empty() {
        return Err("allow() names no rule".to_string());
    }
    let Some(reason_part) = reason_part else {
        return Err("allow() without a `reason = \"...\"` justification".to_string());
    };
    let r = reason_part.trim_start();
    let Some(r) = r.strip_prefix('=') else {
        return Err("expected `reason = \"...\"`".to_string());
    };
    let r = r.trim();
    let unquoted = r
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| "reason must be a quoted string".to_string())?;
    if unquoted.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    let reason = unquoted.to_string();
    Ok(Some(AllowDirective {
        rules,
        reason,
        line: token.line,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_directive_roundtrip() {
        let f = SourceFile::new(
            "x.rs",
            "// avis-lint: allow(p1, reason = \"invariant: pool non-empty\")\nlet x = v.unwrap();\n",
        );
        assert_eq!(f.allows.len(), 1);
        assert!(f.suppression("p1", 2).is_some());
        assert!(f.suppression("d1", 2).is_none());
        assert!(f.suppression("p1", 3).is_none());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let f = SourceFile::new("x.rs", "// avis-lint: allow(p1)\n");
        assert!(f.allows.is_empty());
        assert_eq!(f.malformed.len(), 1);
    }

    #[test]
    fn cfg_test_module_lines_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn live2() {}\n";
        let f = SourceFile::new("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_fn_with_stacked_attributes_is_marked() {
        let src = "#[test]\n#[should_panic]\nfn boom() {\n    panic!();\n}\nfn live() {}\n";
        let f = SourceFile::new("x.rs", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn struct_fields_skip_attributes_and_generic_types() {
        let src = "pub struct S<T> {\n    /// doc\n    pub a: BTreeMap<String, Vec<T>>,\n    #[serde(default)]\n    pub(crate) b: (u8, u8),\n    c: f64,\n}\n";
        let f = SourceFile::new("x.rs", src);
        let fields = f.struct_fields("S").unwrap();
        let names: Vec<_> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn fn_bodies_match_braces() {
        let src = "impl S {\n    fn diff(&self) -> D {\n        D { x: self.x }\n    }\n    fn other(&self) {}\n}\n";
        let f = SourceFile::new("x.rs", src);
        let bodies = f.fn_bodies("diff");
        assert_eq!(bodies.len(), 1);
        assert!(f.ranges_reference_ident(&bodies, "x"));
        assert!(!f.ranges_reference_ident(&bodies, "other"));
    }
}
