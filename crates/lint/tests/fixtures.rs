//! End-to-end tests over the fixture workspace in `tests/fixtures/`:
//! each rule fires on a known-bad snippet, is silenced by an
//! `avis-lint: allow(...)` directive, and S1 catches an uncovered
//! field. The fixture tree is excluded from the real workspace scan by
//! the repository's `lint.toml`.

use avis_lint::config::LintConfig;
use avis_lint::report::LintReport;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run_fixtures() -> LintReport {
    let root = fixture_root();
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("fixture lint.toml");
    let config = LintConfig::parse(&text).expect("fixture config parses");
    avis_lint::run(&root, &config).expect("fixture scan succeeds")
}

fn rule_count(report: &LintReport, rule: &str) -> usize {
    report.violations.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn every_rule_fires_on_its_fixture() {
    let report = run_fixtures();
    assert_eq!(rule_count(&report, "d1"), 4, "{:#?}", report.violations);
    assert_eq!(rule_count(&report, "d2"), 2, "{:#?}", report.violations);
    assert_eq!(rule_count(&report, "p1"), 2, "{:#?}", report.violations);
    assert_eq!(rule_count(&report, "u1"), 1, "{:#?}", report.violations);
    assert_eq!(rule_count(&report, "s1"), 1, "{:#?}", report.violations);
    assert_eq!(rule_count(&report, "lint"), 1, "{:#?}", report.violations);
    assert_eq!(report.violations.len(), 11);
    assert_eq!(report.files_scanned, 7);
    assert!(report.has_violations());
}

#[test]
fn allow_directives_suppress_and_are_audited() {
    let report = run_fixtures();
    let rules: Vec<&str> = report
        .suppressed
        .iter()
        .map(|s| s.diagnostic.rule)
        .collect();
    assert_eq!(rules, ["d1", "p1", "d2", "u1"], "{:#?}", report.suppressed);
    for s in &report.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "every suppression carries its justification: {:#?}",
            s
        );
    }
}

#[test]
fn s1_catches_the_uncovered_field_and_records_the_skip() {
    let report = run_fixtures();
    let s1: Vec<_> = report
        .violations
        .iter()
        .filter(|d| d.rule == "s1")
        .collect();
    assert_eq!(s1.len(), 1);
    assert_eq!(s1[0].file, "crates/sim/src/state.rs");
    assert!(
        s1[0].message.contains("State::heading"),
        "{}",
        s1[0].message
    );

    assert_eq!(report.snapshot_skips.len(), 1);
    let (file, field, reason) = &report.snapshot_skips[0];
    assert_eq!(file, "crates/sim/src/state.rs");
    assert_eq!(field, "State::cache");
    assert!(reason.contains("rebuilt from position"), "{reason}");
}

#[test]
fn out_of_scope_crates_and_test_regions_are_exempt() {
    let report = run_fixtures();
    assert!(
        report
            .violations
            .iter()
            .all(|d| d.file != "crates/tools/src/clean.rs"),
        "tools is not a determinism crate: {:#?}",
        report.violations
    );
    // banned.rs and engine.rs both contain banned constructs inside
    // #[cfg(test)] regions; none of those lines may appear.
    for d in &report.violations {
        assert!(
            d.line < 25 || d.file != "crates/core/src/banned.rs",
            "test-region finding leaked: {:#?}",
            d
        );
    }
}

#[test]
fn a_reasonless_allow_is_a_lint_violation() {
    let report = run_fixtures();
    let lint: Vec<_> = report
        .violations
        .iter()
        .filter(|d| d.rule == "lint")
        .collect();
    assert_eq!(lint.len(), 1);
    assert_eq!(lint[0].file, "crates/tools/src/malformed.rs");
    assert!(
        lint[0].message.contains("malformed avis-lint directive"),
        "{}",
        lint[0].message
    );
}

#[test]
fn reports_render_stably() {
    let report = run_fixtures();

    let text = report.render_text();
    assert!(text.contains("7 file(s) scanned, 11 violation(s), 4 suppression(s)"));
    // Stable (file, line, rule) ordering: sorted, so rerendering is
    // byte-identical run to run.
    assert_eq!(text, run_fixtures().render_text());

    let json = report.to_json().to_pretty();
    assert!(json.contains("\"tool\": \"avis-lint\""));
    assert!(json.contains("\"violations\""));
    assert!(json.contains("\"snapshot_skips\""));
    assert!(json.contains("State::cache"));
}
