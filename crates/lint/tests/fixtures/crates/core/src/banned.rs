//! D1 fixture: every banned-API construct, one per line. This file is
//! never compiled — it exists to be scanned by the integration tests.

use std::collections::HashMap;

pub fn now_ms() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}

pub fn host_home() -> Option<String> {
    std::env::var("HOME").ok()
}

pub fn allowed_env() -> Option<String> {
    // avis-lint: allow(d1, reason = "diagnostic banner only; never affects replay")
    std::env::var("CI").ok()
}

pub fn extra() -> u32 {
    Extra::tick()
}

pub fn named_after_a_banned_api() -> &'static str {
    "HashMap is fine inside a string literal"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hashmap_is_fine_in_tests() {
        let _ = HashMap::<u8, u8>::new();
    }
}
