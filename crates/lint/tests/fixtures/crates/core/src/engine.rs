//! P1 fixture: bare panics in a configured hot-path module.

pub fn pop(stack: &mut Vec<u32>) -> u32 {
    stack.pop().unwrap()
}

pub fn front(queue: &[u32]) -> u32 {
    *queue.first().expect("queue is non-empty")
}

pub fn checked(stack: &mut Vec<u32>) -> u32 {
    // avis-lint: allow(p1, reason = "callers push before popping; an empty stack is a driver bug")
    stack.pop().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let _ = Some(1).unwrap();
    }
}
