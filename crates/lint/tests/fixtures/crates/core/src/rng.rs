//! D2 fixture: non-SimRng RNGs and pointer-to-integer casts.

pub fn seed_from_os() -> u64 {
    let _rng = OsRng;
    0
}

pub fn chunk_key(buf: &[u8]) -> usize {
    buf.as_ptr() as usize
}

pub fn budget_key(buf: &[u8]) -> usize {
    // avis-lint: allow(d2, reason = "memory accounting only; never feeds replay")
    buf.as_ptr() as usize
}
