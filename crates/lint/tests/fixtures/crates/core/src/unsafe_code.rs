//! U1 fixture: `unsafe` with and without a SAFETY justification.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn read_checked(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p points at a live byte
    unsafe { *p }
}

pub fn read_allowed(p: *const u8) -> u8 {
    // avis-lint: allow(u1, reason = "fixture exercising the suppression path")
    unsafe { *p }
}
