//! S1 fixture: a state ↔ snapshot pair with one uncovered field and
//! one skip-annotated field.

pub struct State {
    pub position: f64,
    pub velocity: f64,
    /// Never snapshotted — S1 must fire here.
    pub heading: f64,
    // snapshot: skip(derived lookup table, rebuilt from position on restore)
    pub cache: Vec<f64>,
}

pub struct StateSnapshot {
    pub position: f64,
    pub velocity: f64,
}

impl State {
    pub fn snapshot(&self) -> StateSnapshot {
        StateSnapshot {
            position: self.position,
            velocity: self.velocity,
        }
    }

    pub fn apply(&mut self, snap: &StateSnapshot) {
        self.position = snap.position;
        self.velocity = snap.velocity;
    }
}
