//! Out of determinism scope: `tools` is not listed in `[rules.d1]`, so
//! HashMap here must NOT fire.

use std::collections::HashMap;

pub fn histogram(xs: &[u8]) -> HashMap<u8, u32> {
    let mut h = HashMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0) += 1;
    }
    h
}
