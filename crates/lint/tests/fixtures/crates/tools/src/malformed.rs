//! A directive without a reason is itself a violation (`lint` rule) —
//! silent, unexplained allows must not pass review.

pub fn f() -> u32 {
    // avis-lint: allow(d1)
    1
}
