//! Wire codec: frames [`Message`]s into length-prefixed, checksummed byte
//! packets and decodes them back.
//!
//! Real MAVLink frames carry a magic byte, payload length, sequence
//! number, system/component ids, a message id and an X.25 checksum. The
//! MAVLite frame keeps the same shape (magic, length, sequence, message
//! id, payload, CRC-16/X.25) so that framing bugs — truncation, bit
//! corruption, resynchronisation — are exercised realistically by tests.

use crate::message::{AckResult, CommandKind, Message, MissionCommand, MissionItem, ProtocolMode};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Start-of-frame marker.
pub const FRAME_MAGIC: u8 = 0xFD;

/// Errors produced while encoding or decoding frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not begin with [`FRAME_MAGIC`].
    BadMagic(u8),
    /// The buffer ended before a complete frame was read.
    Truncated,
    /// The checksum did not match the payload.
    ChecksumMismatch,
    /// The message id is not recognised.
    UnknownMessageId(u8),
    /// A payload field held an invalid value.
    InvalidField(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic(b) => write!(f, "bad frame magic byte 0x{b:02x}"),
            CodecError::Truncated => f.write_str("truncated frame"),
            CodecError::ChecksumMismatch => f.write_str("frame checksum mismatch"),
            CodecError::UnknownMessageId(id) => write!(f, "unknown message id {id}"),
            CodecError::InvalidField(which) => write!(f, "invalid value in field `{which}`"),
        }
    }
}

impl std::error::Error for CodecError {}

/// CRC-16/X.25 (the MAVLink checksum polynomial) over a byte slice.
pub fn crc16_x25(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        let mut tmp = byte ^ (crc as u8);
        tmp ^= tmp << 4;
        crc = (crc >> 8) ^ ((tmp as u16) << 8) ^ ((tmp as u16) << 3) ^ ((tmp as u16) >> 4);
    }
    !crc
}

fn put_mode(buf: &mut BytesMut, mode: ProtocolMode) {
    let v = match mode {
        ProtocolMode::Stabilize => 0u8,
        ProtocolMode::AltHold => 1,
        ProtocolMode::PosHold => 2,
        ProtocolMode::Auto => 3,
        ProtocolMode::Guided => 4,
        ProtocolMode::Land => 5,
        ProtocolMode::ReturnToLaunch => 6,
    };
    buf.put_u8(v);
}

fn get_mode(buf: &mut Bytes) -> Result<ProtocolMode, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    Ok(match buf.get_u8() {
        0 => ProtocolMode::Stabilize,
        1 => ProtocolMode::AltHold,
        2 => ProtocolMode::PosHold,
        3 => ProtocolMode::Auto,
        4 => ProtocolMode::Guided,
        5 => ProtocolMode::Land,
        6 => ProtocolMode::ReturnToLaunch,
        _ => return Err(CodecError::InvalidField("mode")),
    })
}

fn put_mission_item(buf: &mut BytesMut, item: &MissionItem) {
    buf.put_u16(item.seq);
    match item.command {
        MissionCommand::Takeoff { altitude } => {
            buf.put_u8(0);
            buf.put_f64(altitude);
            buf.put_f64(0.0);
            buf.put_f64(0.0);
        }
        MissionCommand::Waypoint { x, y, z } => {
            buf.put_u8(1);
            buf.put_f64(x);
            buf.put_f64(y);
            buf.put_f64(z);
        }
        MissionCommand::Land => {
            buf.put_u8(2);
            buf.put_f64(0.0);
            buf.put_f64(0.0);
            buf.put_f64(0.0);
        }
        MissionCommand::ReturnToLaunch => {
            buf.put_u8(3);
            buf.put_f64(0.0);
            buf.put_f64(0.0);
            buf.put_f64(0.0);
        }
    }
}

fn get_mission_item(buf: &mut Bytes) -> Result<MissionItem, CodecError> {
    if buf.remaining() < 2 + 1 + 24 {
        return Err(CodecError::Truncated);
    }
    let seq = buf.get_u16();
    let kind = buf.get_u8();
    let a = buf.get_f64();
    let b = buf.get_f64();
    let c = buf.get_f64();
    let command = match kind {
        0 => MissionCommand::Takeoff { altitude: a },
        1 => MissionCommand::Waypoint { x: a, y: b, z: c },
        2 => MissionCommand::Land,
        3 => MissionCommand::ReturnToLaunch,
        _ => return Err(CodecError::InvalidField("mission command")),
    };
    Ok(MissionItem { seq, command })
}

/// Encodes a message payload (without frame header or checksum).
fn encode_payload(msg: &Message) -> BytesMut {
    let mut buf = BytesMut::with_capacity(64);
    match *msg {
        Message::Heartbeat { mode, armed } => {
            put_mode(&mut buf, mode);
            buf.put_u8(u8::from(armed));
        }
        Message::Status {
            x,
            y,
            altitude,
            climb_rate,
            mission_seq,
            landed,
        } => {
            buf.put_f64(x);
            buf.put_f64(y);
            buf.put_f64(altitude);
            buf.put_f64(climb_rate);
            buf.put_u16(mission_seq);
            buf.put_u8(u8::from(landed));
        }
        Message::ArmDisarm { arm } => buf.put_u8(u8::from(arm)),
        Message::SetMode { mode } => put_mode(&mut buf, mode),
        Message::CommandTakeoff { altitude } => buf.put_f64(altitude),
        Message::CommandGoto { x, y, z } => {
            buf.put_f64(x);
            buf.put_f64(y);
            buf.put_f64(z);
        }
        Message::CommandAck { command, result } => {
            buf.put_u8(match command {
                CommandKind::Arm => 0,
                CommandKind::SetMode => 1,
                CommandKind::Takeoff => 2,
            });
            buf.put_u8(match result {
                AckResult::Accepted => 0,
                AckResult::Rejected => 1,
            });
        }
        Message::MissionCount { count } => buf.put_u16(count),
        Message::MissionRequest { seq } => buf.put_u16(seq),
        Message::MissionItemMsg { item } => put_mission_item(&mut buf, &item),
        Message::MissionAck { accepted } => buf.put_u8(u8::from(accepted)),
        Message::StatusText { severity } => buf.put_u8(severity),
    }
    buf
}

fn decode_payload(id: u8, mut buf: Bytes) -> Result<Message, CodecError> {
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(CodecError::Truncated)
        } else {
            Ok(())
        }
    };
    let msg = match id {
        0 => {
            let mode = get_mode(&mut buf)?;
            need(&buf, 1)?;
            Message::Heartbeat {
                mode,
                armed: buf.get_u8() != 0,
            }
        }
        1 => {
            need(&buf, 8 * 4 + 2 + 1)?;
            Message::Status {
                x: buf.get_f64(),
                y: buf.get_f64(),
                altitude: buf.get_f64(),
                climb_rate: buf.get_f64(),
                mission_seq: buf.get_u16(),
                landed: buf.get_u8() != 0,
            }
        }
        2 => {
            need(&buf, 1)?;
            Message::ArmDisarm {
                arm: buf.get_u8() != 0,
            }
        }
        3 => Message::SetMode {
            mode: get_mode(&mut buf)?,
        },
        4 => {
            need(&buf, 8)?;
            Message::CommandTakeoff {
                altitude: buf.get_f64(),
            }
        }
        5 => {
            need(&buf, 2)?;
            let command = match buf.get_u8() {
                0 => CommandKind::Arm,
                1 => CommandKind::SetMode,
                2 => CommandKind::Takeoff,
                _ => return Err(CodecError::InvalidField("command kind")),
            };
            let result = match buf.get_u8() {
                0 => AckResult::Accepted,
                1 => AckResult::Rejected,
                _ => return Err(CodecError::InvalidField("ack result")),
            };
            Message::CommandAck { command, result }
        }
        6 => {
            need(&buf, 2)?;
            Message::MissionCount {
                count: buf.get_u16(),
            }
        }
        7 => {
            need(&buf, 2)?;
            Message::MissionRequest { seq: buf.get_u16() }
        }
        8 => Message::MissionItemMsg {
            item: get_mission_item(&mut buf)?,
        },
        9 => {
            need(&buf, 1)?;
            Message::MissionAck {
                accepted: buf.get_u8() != 0,
            }
        }
        10 => {
            need(&buf, 1)?;
            Message::StatusText {
                severity: buf.get_u8(),
            }
        }
        11 => {
            need(&buf, 24)?;
            Message::CommandGoto {
                x: buf.get_f64(),
                y: buf.get_f64(),
                z: buf.get_f64(),
            }
        }
        other => return Err(CodecError::UnknownMessageId(other)),
    };
    Ok(msg)
}

/// Encodes a message into a complete frame with the given sequence number.
///
/// Frame layout: `magic | seq | msg_id | payload_len | payload | crc16`.
pub fn encode_frame(msg: &Message, seq: u8) -> Bytes {
    let payload = encode_payload(msg);
    let mut frame = BytesMut::with_capacity(payload.len() + 6);
    frame.put_u8(FRAME_MAGIC);
    frame.put_u8(seq);
    frame.put_u8(msg.message_id());
    debug_assert!(payload.len() <= u8::MAX as usize, "payload too large");
    frame.put_u8(payload.len() as u8);
    frame.extend_from_slice(&payload);
    let crc = crc16_x25(&frame[1..]);
    frame.put_u16(crc);
    frame.freeze()
}

/// Decodes one frame from the front of `data`, returning the message, its
/// sequence number and the number of bytes consumed.
///
/// # Errors
///
/// Returns [`CodecError`] if the buffer does not hold a complete, valid
/// frame.
pub fn decode_frame(data: &[u8]) -> Result<(Message, u8, usize), CodecError> {
    if data.is_empty() {
        return Err(CodecError::Truncated);
    }
    if data[0] != FRAME_MAGIC {
        return Err(CodecError::BadMagic(data[0]));
    }
    if data.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let seq = data[1];
    let msg_id = data[2];
    let payload_len = data[3] as usize;
    let total = 4 + payload_len + 2;
    if data.len() < total {
        return Err(CodecError::Truncated);
    }
    let expected_crc = u16::from_be_bytes([data[total - 2], data[total - 1]]);
    let actual_crc = crc16_x25(&data[1..total - 2]);
    if expected_crc != actual_crc {
        return Err(CodecError::ChecksumMismatch);
    }
    let payload = Bytes::copy_from_slice(&data[4..4 + payload_len]);
    let msg = decode_payload(msg_id, payload)?;
    Ok((msg, seq, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Heartbeat {
                mode: ProtocolMode::Auto,
                armed: true,
            },
            Message::Status {
                x: 1.5,
                y: -2.5,
                altitude: 19.75,
                climb_rate: -0.5,
                mission_seq: 3,
                landed: false,
            },
            Message::ArmDisarm { arm: true },
            Message::SetMode {
                mode: ProtocolMode::ReturnToLaunch,
            },
            Message::CommandTakeoff { altitude: 20.0 },
            Message::CommandGoto {
                x: -4.0,
                y: 8.5,
                z: 20.0,
            },
            Message::CommandAck {
                command: CommandKind::SetMode,
                result: AckResult::Rejected,
            },
            Message::MissionCount { count: 7 },
            Message::MissionRequest { seq: 4 },
            Message::MissionItemMsg {
                item: MissionItem::new(
                    2,
                    MissionCommand::Waypoint {
                        x: 20.0,
                        y: 20.0,
                        z: 20.0,
                    },
                ),
            },
            Message::MissionItemMsg {
                item: MissionItem::new(0, MissionCommand::Takeoff { altitude: 20.0 }),
            },
            Message::MissionItemMsg {
                item: MissionItem::new(5, MissionCommand::ReturnToLaunch),
            },
            Message::MissionAck { accepted: true },
            Message::StatusText { severity: 4 },
        ]
    }

    #[test]
    fn round_trip_all_messages() {
        for (i, msg) in sample_messages().into_iter().enumerate() {
            let frame = encode_frame(&msg, i as u8);
            let (decoded, seq, used) = decode_frame(&frame).expect("decode");
            assert_eq!(decoded, msg);
            assert_eq!(seq as usize, i);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let frame = encode_frame(&Message::ArmDisarm { arm: true }, 0);
        let mut bytes = frame.to_vec();
        bytes[0] = 0x00;
        assert_eq!(decode_frame(&bytes), Err(CodecError::BadMagic(0)));
    }

    #[test]
    fn decode_rejects_corrupted_payload() {
        let frame = encode_frame(&Message::MissionCount { count: 300 }, 9);
        let mut bytes = frame.to_vec();
        let idx = bytes.len() - 3;
        bytes[idx] ^= 0xFF;
        assert_eq!(decode_frame(&bytes), Err(CodecError::ChecksumMismatch));
    }

    #[test]
    fn decode_rejects_truncation() {
        let frame = encode_frame(&Message::CommandTakeoff { altitude: 12.0 }, 1);
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut]);
            assert!(err.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn decode_consumes_exactly_one_frame() {
        let a = encode_frame(&Message::ArmDisarm { arm: true }, 1);
        let b = encode_frame(&Message::MissionAck { accepted: false }, 2);
        let mut stream = a.to_vec();
        stream.extend_from_slice(&b);
        let (m1, _, used1) = decode_frame(&stream).unwrap();
        assert_eq!(m1, Message::ArmDisarm { arm: true });
        let (m2, _, used2) = decode_frame(&stream[used1..]).unwrap();
        assert_eq!(m2, Message::MissionAck { accepted: false });
        assert_eq!(used1 + used2, stream.len());
    }

    #[test]
    fn unknown_message_id_reported() {
        let frame = encode_frame(&Message::StatusText { severity: 1 }, 0);
        let mut bytes = frame.to_vec();
        bytes[2] = 200; // overwrite msg id
                        // Fix the checksum so only the id is wrong.
        let total = bytes.len();
        let crc = crc16_x25(&bytes[1..total - 2]);
        bytes[total - 2..].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(decode_frame(&bytes), Err(CodecError::UnknownMessageId(200)));
    }

    #[test]
    fn crc_known_properties() {
        // CRC of an empty slice is the X.25 initial value complemented.
        assert_eq!(crc16_x25(&[]), !0xFFFFu16);
        // CRC changes when the data changes.
        assert_ne!(crc16_x25(b"hello"), crc16_x25(b"hellp"));
        // CRC is deterministic.
        assert_eq!(crc16_x25(b"avis"), crc16_x25(b"avis"));
    }

    #[test]
    fn error_display_strings() {
        assert!(CodecError::BadMagic(7).to_string().contains("magic"));
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(CodecError::UnknownMessageId(9).to_string().contains('9'));
        assert!(CodecError::InvalidField("mode")
            .to_string()
            .contains("mode"));
    }
}
