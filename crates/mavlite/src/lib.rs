//! # avis-mavlite
//!
//! A compact MAVLink-like protocol layer for the Avis reproduction.
//!
//! UAVs communicate with ground-control stations using MAVLink; the
//! paper's workload framework exists largely to hide MAVLink's awkward,
//! vehicle-driven transactions from test authors (§V.A). This crate
//! reproduces the protocol surface the paper relies on:
//!
//! - [`message::Message`] — the message set (heartbeat, telemetry, mode,
//!   arm, takeoff, and the mission-upload handshake),
//! - [`codec`] — length-prefixed, CRC-checked wire framing,
//! - [`link::Link`] — an in-process, bidirectional GCS ↔ vehicle link
//!   that still round-trips every message through the wire codec,
//! - [`mission::MissionUploader`] — the ground-station side of the
//!   vehicle-driven mission upload, with an explicit timeout so a stalled
//!   upload cannot deadlock the model checker.
//!
//! # Example
//!
//! ```
//! use avis_mavlite::{Endpoint, Link, Message, ProtocolMode};
//!
//! let mut link = Link::new();
//! link.send(Endpoint::GroundStation, &Message::SetMode { mode: ProtocolMode::Auto });
//! assert_eq!(
//!     link.recv(Endpoint::Vehicle),
//!     Some(Message::SetMode { mode: ProtocolMode::Auto })
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod link;
pub mod message;
pub mod mission;

pub use codec::{decode_frame, encode_frame, CodecError, FRAME_MAGIC};
pub use link::{Endpoint, Link, LinkParts};
pub use message::{AckResult, CommandKind, Message, MissionCommand, MissionItem, ProtocolMode};
pub use mission::{square_mission, MissionUploader, UploadState, UploaderParts};
