//! An in-process, bidirectional message link between the ground-control
//! station (workload) and the vehicle (firmware).
//!
//! The paper's workload framework and firmware communicate over a real
//! MAVLink transport; here both endpoints live in one process and step in
//! lock-step with the simulator, so the link is a pair of byte queues.
//! Messages are still *framed and encoded* through the wire codec so the
//! protocol path (serialisation, checksums, resynchronisation) is the one
//! exercised in tests.

use crate::codec::{decode_frame, encode_frame, CodecError};
use crate::message::Message;
use std::collections::VecDeque;

/// Which side of the link an endpoint represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// The ground-control station (the workload).
    GroundStation,
    /// The vehicle (the firmware).
    Vehicle,
}

/// A bidirectional, in-process MAVLite link.
///
/// The link owns two byte streams (GCS → vehicle and vehicle → GCS); each
/// `send_*` call appends an encoded frame and each `recv_*` call decodes
/// and removes one frame.
#[derive(Debug, Default)]
pub struct Link {
    to_vehicle: VecDeque<u8>,
    to_gcs: VecDeque<u8>,
    seq_gcs: u8,
    seq_vehicle: u8,
    /// Count of frames dropped due to decode errors.
    decode_errors: u64,
}

impl Link {
    /// Creates an empty link.
    pub fn new() -> Self {
        Link::default()
    }

    /// Sends a message from the given endpoint.
    pub fn send(&mut self, from: Endpoint, msg: &Message) {
        match from {
            Endpoint::GroundStation => {
                let frame = encode_frame(msg, self.seq_gcs);
                self.seq_gcs = self.seq_gcs.wrapping_add(1);
                self.to_vehicle.extend(frame.iter());
            }
            Endpoint::Vehicle => {
                let frame = encode_frame(msg, self.seq_vehicle);
                self.seq_vehicle = self.seq_vehicle.wrapping_add(1);
                self.to_gcs.extend(frame.iter());
            }
        }
    }

    /// Receives the next message addressed to the given endpoint, if any.
    ///
    /// Corrupted frames are dropped (counted in
    /// [`Link::decode_error_count`]) and decoding continues with the next
    /// frame, mimicking a real link that resynchronises on the magic byte.
    pub fn recv(&mut self, at: Endpoint) -> Option<Message> {
        let queue = match at {
            Endpoint::GroundStation => &mut self.to_gcs,
            Endpoint::Vehicle => &mut self.to_vehicle,
        };
        loop {
            if queue.is_empty() {
                return None;
            }
            let contiguous: Vec<u8> = queue.iter().copied().collect();
            match decode_frame(&contiguous) {
                Ok((msg, _seq, used)) => {
                    queue.drain(..used);
                    return Some(msg);
                }
                Err(CodecError::Truncated) => return None,
                Err(_) => {
                    // Drop one byte and attempt to resynchronise on the next
                    // magic byte.
                    self.decode_errors += 1;
                    queue.pop_front();
                    while let Some(&b) = queue.front() {
                        if b == crate::codec::FRAME_MAGIC {
                            break;
                        }
                        queue.pop_front();
                    }
                }
            }
        }
    }

    /// Drains every pending message addressed to the given endpoint.
    pub fn drain(&mut self, at: Endpoint) -> Vec<Message> {
        let mut out = Vec::new();
        while let Some(m) = self.recv(at) {
            out.push(m);
        }
        out
    }

    /// Number of frames dropped because they failed to decode.
    pub fn decode_error_count(&self) -> u64 {
        self.decode_errors
    }

    /// Number of bytes currently queued toward the given endpoint.
    pub fn pending_bytes(&self, at: Endpoint) -> usize {
        match at {
            Endpoint::GroundStation => self.to_gcs.len(),
            Endpoint::Vehicle => self.to_vehicle.len(),
        }
    }

    /// Corrupts the next `n` bytes queued toward an endpoint (test helper
    /// for exercising link-level fault tolerance).
    pub fn corrupt_pending(&mut self, at: Endpoint, n: usize) {
        let queue = match at {
            Endpoint::GroundStation => &mut self.to_gcs,
            Endpoint::Vehicle => &mut self.to_vehicle,
        };
        for byte in queue.iter_mut().take(n) {
            *byte ^= 0xA5;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MissionCommand, MissionItem, ProtocolMode};

    #[test]
    fn gcs_to_vehicle_round_trip() {
        let mut link = Link::new();
        link.send(Endpoint::GroundStation, &Message::ArmDisarm { arm: true });
        link.send(
            Endpoint::GroundStation,
            &Message::SetMode {
                mode: ProtocolMode::Auto,
            },
        );
        assert_eq!(
            link.recv(Endpoint::Vehicle),
            Some(Message::ArmDisarm { arm: true })
        );
        assert_eq!(
            link.recv(Endpoint::Vehicle),
            Some(Message::SetMode {
                mode: ProtocolMode::Auto
            })
        );
        assert_eq!(link.recv(Endpoint::Vehicle), None);
    }

    #[test]
    fn vehicle_to_gcs_round_trip() {
        let mut link = Link::new();
        link.send(
            Endpoint::Vehicle,
            &Message::Heartbeat {
                mode: ProtocolMode::Land,
                armed: true,
            },
        );
        assert_eq!(
            link.recv(Endpoint::GroundStation),
            Some(Message::Heartbeat {
                mode: ProtocolMode::Land,
                armed: true
            })
        );
    }

    #[test]
    fn directions_are_independent() {
        let mut link = Link::new();
        link.send(Endpoint::GroundStation, &Message::MissionCount { count: 2 });
        // The GCS does not see its own message.
        assert_eq!(link.recv(Endpoint::GroundStation), None);
        assert!(link.recv(Endpoint::Vehicle).is_some());
    }

    #[test]
    fn drain_returns_all_pending() {
        let mut link = Link::new();
        for i in 0..5u16 {
            link.send(Endpoint::GroundStation, &Message::MissionRequest { seq: i });
        }
        let msgs = link.drain(Endpoint::Vehicle);
        assert_eq!(msgs.len(), 5);
        assert_eq!(msgs[4], Message::MissionRequest { seq: 4 });
        assert!(link.drain(Endpoint::Vehicle).is_empty());
    }

    #[test]
    fn corruption_drops_frame_but_recovers() {
        let mut link = Link::new();
        link.send(
            Endpoint::GroundStation,
            &Message::MissionAck { accepted: true },
        );
        link.send(
            Endpoint::GroundStation,
            &Message::MissionItemMsg {
                item: MissionItem::new(
                    1,
                    MissionCommand::Waypoint {
                        x: 1.0,
                        y: 2.0,
                        z: 3.0,
                    },
                ),
            },
        );
        // Corrupt the first frame's payload byte.
        link.corrupt_pending(Endpoint::Vehicle, 5);
        let got = link.drain(Endpoint::Vehicle);
        // First frame is dropped, second survives.
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0], Message::MissionItemMsg { .. }));
        assert!(link.decode_error_count() >= 1);
    }

    #[test]
    fn pending_bytes_tracks_queues() {
        let mut link = Link::new();
        assert_eq!(link.pending_bytes(Endpoint::Vehicle), 0);
        link.send(Endpoint::GroundStation, &Message::ArmDisarm { arm: false });
        assert!(link.pending_bytes(Endpoint::Vehicle) > 0);
        assert_eq!(link.pending_bytes(Endpoint::GroundStation), 0);
        link.recv(Endpoint::Vehicle);
        assert_eq!(link.pending_bytes(Endpoint::Vehicle), 0);
    }
}
