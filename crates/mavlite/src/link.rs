//! An in-process, bidirectional message link between the ground-control
//! station (workload) and the vehicle (firmware).
//!
//! The paper's workload framework and firmware communicate over a real
//! MAVLink transport; here both endpoints live in one process and step in
//! lock-step with the simulator, so the link is a pair of byte queues.
//! Messages are still *framed and encoded* through the wire codec so the
//! protocol path (serialisation, checksums, resynchronisation) is the one
//! exercised in tests.

use crate::codec::{decode_frame, encode_frame, CodecError};
use crate::message::Message;
use bytes::Bytes;
use std::collections::VecDeque;

/// Which side of the link an endpoint represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// The ground-control station (the workload).
    GroundStation,
    /// The vehicle (the firmware).
    Vehicle,
}

/// A bidirectional, in-process MAVLite link.
///
/// The link owns two byte streams (GCS → vehicle and vehicle → GCS); each
/// `send_*` call appends an encoded frame and each `recv_*` call decodes
/// and removes one frame.
#[derive(Debug, Clone, Default)]
pub struct Link {
    to_vehicle: VecDeque<u8>,
    to_gcs: VecDeque<u8>,
    seq_gcs: u8,
    seq_vehicle: u8,
    /// Next sequence number each receiving endpoint expects, once it has
    /// decoded at least one frame.
    expected_at_vehicle: Option<u8>,
    expected_at_gcs: Option<u8>,
    /// Per-endpoint count of sequence numbers skipped on the wire.
    seq_gaps_at_vehicle: u64,
    seq_gaps_at_gcs: u64,
    /// Count of frames dropped due to decode errors.
    decode_errors: u64,
}

impl Link {
    /// Creates an empty link.
    pub fn new() -> Self {
        Link::default()
    }

    /// Encodes `msg` with the sender's next sequence number *without*
    /// queueing the frame.
    ///
    /// The sequence counter advances even if the frame is never injected,
    /// so a dropped frame leaves an observable gap at the receiver (see
    /// [`Link::seq_gaps`]). Pair with [`Link::inject_frame`] to deliver.
    pub fn encode_next(&mut self, from: Endpoint, msg: &Message) -> Bytes {
        let seq = match from {
            Endpoint::GroundStation => {
                let s = self.seq_gcs;
                self.seq_gcs = self.seq_gcs.wrapping_add(1);
                s
            }
            Endpoint::Vehicle => {
                let s = self.seq_vehicle;
                self.seq_vehicle = self.seq_vehicle.wrapping_add(1);
                s
            }
        };
        encode_frame(msg, seq)
    }

    /// Appends raw frame bytes to the stream flowing toward `toward`.
    ///
    /// The bytes are taken verbatim — duplicated, corrupted or reordered
    /// frames go on the wire exactly as given, which is what the protocol
    /// fault injector relies on.
    pub fn inject_frame(&mut self, toward: Endpoint, frame: &[u8]) {
        match toward {
            Endpoint::GroundStation => self.to_gcs.extend(frame.iter().copied()),
            Endpoint::Vehicle => self.to_vehicle.extend(frame.iter().copied()),
        }
    }

    /// Sends a message from the given endpoint.
    pub fn send(&mut self, from: Endpoint, msg: &Message) {
        let frame = self.encode_next(from, msg);
        let toward = match from {
            Endpoint::GroundStation => Endpoint::Vehicle,
            Endpoint::Vehicle => Endpoint::GroundStation,
        };
        self.inject_frame(toward, &frame);
    }

    /// Receives the next message addressed to the given endpoint, if any.
    ///
    /// Corrupted frames are dropped (counted in
    /// [`Link::decode_error_count`]) and decoding continues with the next
    /// frame, mimicking a real link that resynchronises on the magic byte.
    pub fn recv(&mut self, at: Endpoint) -> Option<Message> {
        let queue = match at {
            Endpoint::GroundStation => &mut self.to_gcs,
            Endpoint::Vehicle => &mut self.to_vehicle,
        };
        loop {
            if queue.is_empty() {
                return None;
            }
            // Decoding borrows the queue's contiguous slice directly; the
            // borrow ends once `decode_frame` returns an owned result, so
            // no per-call copy of the whole stream is needed.
            match decode_frame(queue.make_contiguous()) {
                Ok((msg, seq, used)) => {
                    queue.drain(..used);
                    let (expected, gaps) = match at {
                        Endpoint::GroundStation => {
                            (&mut self.expected_at_gcs, &mut self.seq_gaps_at_gcs)
                        }
                        Endpoint::Vehicle => {
                            (&mut self.expected_at_vehicle, &mut self.seq_gaps_at_vehicle)
                        }
                    };
                    if let Some(e) = *expected {
                        *gaps += u64::from(seq.wrapping_sub(e));
                    }
                    *expected = Some(seq.wrapping_add(1));
                    return Some(msg);
                }
                Err(CodecError::Truncated) => return None,
                Err(_) => {
                    // Drop one byte and attempt to resynchronise on the next
                    // magic byte.
                    self.decode_errors += 1;
                    queue.pop_front();
                    while let Some(&b) = queue.front() {
                        if b == crate::codec::FRAME_MAGIC {
                            break;
                        }
                        queue.pop_front();
                    }
                }
            }
        }
    }

    /// Number of sequence numbers the given endpoint has observed to be
    /// skipped on its incoming stream.
    ///
    /// A dropped frame advances the sender's counter without a matching
    /// decode, so the receiver sees the next frame arrive `gap` numbers
    /// early; duplicated frames show up as wrap-around gaps of 255 per
    /// extra copy. Zero on a clean stream.
    pub fn seq_gaps(&self, at: Endpoint) -> u64 {
        match at {
            Endpoint::GroundStation => self.seq_gaps_at_gcs,
            Endpoint::Vehicle => self.seq_gaps_at_vehicle,
        }
    }

    /// Drains every pending message addressed to the given endpoint.
    pub fn drain(&mut self, at: Endpoint) -> Vec<Message> {
        let mut out = Vec::new();
        while let Some(m) = self.recv(at) {
            out.push(m);
        }
        out
    }

    /// Number of frames dropped because they failed to decode.
    pub fn decode_error_count(&self) -> u64 {
        self.decode_errors
    }

    /// Number of bytes currently queued toward the given endpoint.
    pub fn pending_bytes(&self, at: Endpoint) -> usize {
        match at {
            Endpoint::GroundStation => self.to_gcs.len(),
            Endpoint::Vehicle => self.to_vehicle.len(),
        }
    }

    /// Exports the full link state as plain data for serialisation.
    ///
    /// `avis-mavlite` stays dependency-free, so it cannot hand-roll bytes
    /// through the simulator crate's codec; instead the state crosses the
    /// crate boundary as a [`LinkParts`] value and the caller (the fault
    /// injector's link snapshot) owns the wire encoding. Exact inverse of
    /// [`Link::from_parts`].
    pub fn export_parts(&self) -> LinkParts {
        LinkParts {
            to_vehicle: self.to_vehicle.iter().copied().collect(),
            to_gcs: self.to_gcs.iter().copied().collect(),
            seq_gcs: self.seq_gcs,
            seq_vehicle: self.seq_vehicle,
            expected_at_vehicle: self.expected_at_vehicle,
            expected_at_gcs: self.expected_at_gcs,
            seq_gaps_at_vehicle: self.seq_gaps_at_vehicle,
            seq_gaps_at_gcs: self.seq_gaps_at_gcs,
            decode_errors: self.decode_errors,
        }
    }

    /// Rebuilds a link from state exported by [`Link::export_parts`].
    pub fn from_parts(parts: LinkParts) -> Self {
        Link {
            to_vehicle: parts.to_vehicle.into(),
            to_gcs: parts.to_gcs.into(),
            seq_gcs: parts.seq_gcs,
            seq_vehicle: parts.seq_vehicle,
            expected_at_vehicle: parts.expected_at_vehicle,
            expected_at_gcs: parts.expected_at_gcs,
            seq_gaps_at_vehicle: parts.seq_gaps_at_vehicle,
            seq_gaps_at_gcs: parts.seq_gaps_at_gcs,
            decode_errors: parts.decode_errors,
        }
    }

    /// Corrupts the next `n` bytes queued toward an endpoint (test helper
    /// for exercising link-level fault tolerance).
    pub fn corrupt_pending(&mut self, at: Endpoint, n: usize) {
        let queue = match at {
            Endpoint::GroundStation => &mut self.to_gcs,
            Endpoint::Vehicle => &mut self.to_vehicle,
        };
        for byte in queue.iter_mut().take(n) {
            *byte ^= 0xA5;
        }
    }
}

/// Plain-data export of a [`Link`]'s full state (see
/// [`Link::export_parts`]). Every field is public so a downstream crate
/// can serialise it with whatever codec it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkParts {
    /// Bytes queued toward the vehicle.
    pub to_vehicle: Vec<u8>,
    /// Bytes queued toward the ground station.
    pub to_gcs: Vec<u8>,
    /// The GCS's next send sequence number.
    pub seq_gcs: u8,
    /// The vehicle's next send sequence number.
    pub seq_vehicle: u8,
    /// Next sequence number the vehicle expects, once it has decoded one
    /// frame.
    pub expected_at_vehicle: Option<u8>,
    /// Next sequence number the GCS expects, once it has decoded one
    /// frame.
    pub expected_at_gcs: Option<u8>,
    /// Sequence numbers observed skipped at the vehicle.
    pub seq_gaps_at_vehicle: u64,
    /// Sequence numbers observed skipped at the GCS.
    pub seq_gaps_at_gcs: u64,
    /// Frames dropped due to decode errors.
    pub decode_errors: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MissionCommand, MissionItem, ProtocolMode};

    #[test]
    fn gcs_to_vehicle_round_trip() {
        let mut link = Link::new();
        link.send(Endpoint::GroundStation, &Message::ArmDisarm { arm: true });
        link.send(
            Endpoint::GroundStation,
            &Message::SetMode {
                mode: ProtocolMode::Auto,
            },
        );
        assert_eq!(
            link.recv(Endpoint::Vehicle),
            Some(Message::ArmDisarm { arm: true })
        );
        assert_eq!(
            link.recv(Endpoint::Vehicle),
            Some(Message::SetMode {
                mode: ProtocolMode::Auto
            })
        );
        assert_eq!(link.recv(Endpoint::Vehicle), None);
    }

    #[test]
    fn vehicle_to_gcs_round_trip() {
        let mut link = Link::new();
        link.send(
            Endpoint::Vehicle,
            &Message::Heartbeat {
                mode: ProtocolMode::Land,
                armed: true,
            },
        );
        assert_eq!(
            link.recv(Endpoint::GroundStation),
            Some(Message::Heartbeat {
                mode: ProtocolMode::Land,
                armed: true
            })
        );
    }

    #[test]
    fn directions_are_independent() {
        let mut link = Link::new();
        link.send(Endpoint::GroundStation, &Message::MissionCount { count: 2 });
        // The GCS does not see its own message.
        assert_eq!(link.recv(Endpoint::GroundStation), None);
        assert!(link.recv(Endpoint::Vehicle).is_some());
    }

    #[test]
    fn drain_returns_all_pending() {
        let mut link = Link::new();
        for i in 0..5u16 {
            link.send(Endpoint::GroundStation, &Message::MissionRequest { seq: i });
        }
        let msgs = link.drain(Endpoint::Vehicle);
        assert_eq!(msgs.len(), 5);
        assert_eq!(msgs[4], Message::MissionRequest { seq: 4 });
        assert!(link.drain(Endpoint::Vehicle).is_empty());
    }

    #[test]
    fn corruption_drops_frame_but_recovers() {
        let mut link = Link::new();
        link.send(
            Endpoint::GroundStation,
            &Message::MissionAck { accepted: true },
        );
        link.send(
            Endpoint::GroundStation,
            &Message::MissionItemMsg {
                item: MissionItem::new(
                    1,
                    MissionCommand::Waypoint {
                        x: 1.0,
                        y: 2.0,
                        z: 3.0,
                    },
                ),
            },
        );
        // Corrupt the first frame's payload byte.
        link.corrupt_pending(Endpoint::Vehicle, 5);
        let got = link.drain(Endpoint::Vehicle);
        // First frame is dropped, second survives.
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0], Message::MissionItemMsg { .. }));
        assert!(link.decode_error_count() >= 1);
    }

    #[test]
    fn pending_bytes_tracks_queues() {
        let mut link = Link::new();
        assert_eq!(link.pending_bytes(Endpoint::Vehicle), 0);
        link.send(Endpoint::GroundStation, &Message::ArmDisarm { arm: false });
        assert!(link.pending_bytes(Endpoint::Vehicle) > 0);
        assert_eq!(link.pending_bytes(Endpoint::GroundStation), 0);
        link.recv(Endpoint::Vehicle);
        assert_eq!(link.pending_bytes(Endpoint::Vehicle), 0);
    }

    #[test]
    fn clean_stream_has_no_seq_gaps() {
        let mut link = Link::new();
        for _ in 0..300 {
            link.send(Endpoint::GroundStation, &Message::ArmDisarm { arm: true });
            assert!(link.recv(Endpoint::Vehicle).is_some());
        }
        // The sequence byte wraps twice without ever registering a gap.
        assert_eq!(link.seq_gaps(Endpoint::Vehicle), 0);
        assert_eq!(link.seq_gaps(Endpoint::GroundStation), 0);
    }

    #[test]
    fn dropped_frame_is_observable_as_a_seq_gap() {
        let mut link = Link::new();
        link.send(Endpoint::GroundStation, &Message::MissionCount { count: 1 });
        assert!(link.recv(Endpoint::Vehicle).is_some());
        // Encode-but-never-inject models a dropped frame: the sender's
        // counter advances with nothing on the wire.
        let _dropped =
            link.encode_next(Endpoint::GroundStation, &Message::MissionCount { count: 2 });
        link.send(Endpoint::GroundStation, &Message::MissionCount { count: 3 });
        assert_eq!(
            link.recv(Endpoint::Vehicle),
            Some(Message::MissionCount { count: 3 })
        );
        assert_eq!(link.seq_gaps(Endpoint::Vehicle), 1);
        // The reverse direction is unaffected.
        assert_eq!(link.seq_gaps(Endpoint::GroundStation), 0);
    }

    #[test]
    fn multiple_drops_accumulate_gaps() {
        let heartbeat = Message::Heartbeat {
            mode: ProtocolMode::Auto,
            armed: true,
        };
        let mut link = Link::new();
        link.send(Endpoint::Vehicle, &heartbeat);
        assert!(link.recv(Endpoint::GroundStation).is_some());
        for _ in 0..3 {
            let _ = link.encode_next(Endpoint::Vehicle, &heartbeat);
        }
        link.send(Endpoint::Vehicle, &heartbeat);
        assert!(link.recv(Endpoint::GroundStation).is_some());
        assert_eq!(link.seq_gaps(Endpoint::GroundStation), 3);
    }

    #[test]
    fn export_parts_round_trips_mid_stream() {
        let mut link = Link::new();
        // Leave the link mid-flight: pending bytes both ways, advanced
        // sequence counters, a registered gap and a decode error.
        link.send(Endpoint::GroundStation, &Message::ArmDisarm { arm: true });
        assert!(link.recv(Endpoint::Vehicle).is_some());
        let _ = link.encode_next(Endpoint::GroundStation, &Message::MissionCount { count: 9 });
        link.send(Endpoint::GroundStation, &Message::MissionCount { count: 1 });
        link.send(
            Endpoint::Vehicle,
            &Message::Heartbeat {
                mode: ProtocolMode::Auto,
                armed: true,
            },
        );
        link.corrupt_pending(Endpoint::GroundStation, 3);

        let parts = link.export_parts();
        let mut restored = Link::from_parts(parts.clone());
        assert_eq!(restored.export_parts(), parts);
        // Both copies behave identically from here on.
        assert_eq!(
            restored.drain(Endpoint::Vehicle),
            link.drain(Endpoint::Vehicle)
        );
        assert_eq!(
            restored.drain(Endpoint::GroundStation),
            link.drain(Endpoint::GroundStation)
        );
        assert_eq!(
            restored.seq_gaps(Endpoint::Vehicle),
            link.seq_gaps(Endpoint::Vehicle)
        );
        assert_eq!(restored.decode_error_count(), link.decode_error_count());
    }

    #[test]
    fn inject_frame_delivers_raw_bytes() {
        let mut link = Link::new();
        let frame = link.encode_next(Endpoint::GroundStation, &Message::ArmDisarm { arm: true });
        // Inject the same frame twice: a duplicated command.
        link.inject_frame(Endpoint::Vehicle, &frame);
        link.inject_frame(Endpoint::Vehicle, &frame);
        let got = link.drain(Endpoint::Vehicle);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|m| *m == Message::ArmDisarm { arm: true }));
        // The duplicate registers as a wrap-around gap at the receiver.
        assert_eq!(link.seq_gaps(Endpoint::Vehicle), 255);
    }
}
