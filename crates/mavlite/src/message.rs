//! Message definitions for the MAVLite protocol.
//!
//! This is a deliberately compact subset of MAVLink covering exactly the
//! transactions the paper's workload framework abstracts (§V.A): heartbeat
//! and status telemetry from the vehicle, and mode/arm/mission commands
//! from the ground-control station, including the vehicle-driven mission
//! upload handshake (count → request → item → ack).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A navigation command carried by a mission item.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MissionCommand {
    /// Take off and climb to the given altitude (m above home).
    Takeoff {
        /// Target altitude (m).
        altitude: f64,
    },
    /// Fly to a waypoint in the local ENU frame (m).
    Waypoint {
        /// East coordinate (m).
        x: f64,
        /// North coordinate (m).
        y: f64,
        /// Altitude (m).
        z: f64,
    },
    /// Land at the current horizontal position.
    Land,
    /// Return to the launch position and land.
    ReturnToLaunch,
}

/// One item of an uploaded mission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissionItem {
    /// Sequence number (0-based).
    pub seq: u16,
    /// The navigation command.
    pub command: MissionCommand,
}

impl MissionItem {
    /// Creates a mission item.
    pub fn new(seq: u16, command: MissionCommand) -> Self {
        MissionItem { seq, command }
    }
}

/// Flight modes understood at the protocol level.
///
/// The firmware maps these onto its richer internal operating modes; the
/// protocol only needs the handful a ground station can command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolMode {
    /// Manual attitude stabilisation.
    Stabilize,
    /// Altitude hold.
    AltHold,
    /// Position hold / loiter.
    PosHold,
    /// Autonomous mission execution.
    Auto,
    /// Guided (companion-computer driven) flight.
    Guided,
    /// Landing.
    Land,
    /// Return to launch.
    ReturnToLaunch,
}

impl fmt::Display for ProtocolMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolMode::Stabilize => "STABILIZE",
            ProtocolMode::AltHold => "ALT_HOLD",
            ProtocolMode::PosHold => "POS_HOLD",
            ProtocolMode::Auto => "AUTO",
            ProtocolMode::Guided => "GUIDED",
            ProtocolMode::Land => "LAND",
            ProtocolMode::ReturnToLaunch => "RTL",
        };
        f.write_str(s)
    }
}

/// Result carried by a [`Message::CommandAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AckResult {
    /// The command was accepted.
    Accepted,
    /// The command was rejected (e.g. arming checks failed).
    Rejected,
}

/// Commands acknowledged by [`Message::CommandAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandKind {
    /// Arm or disarm request.
    Arm,
    /// Mode change request.
    SetMode,
    /// Direct takeoff command.
    Takeoff,
}

/// A MAVLite message.
///
/// Messages flow in both directions over a [`crate::link::Link`]:
/// vehicle → GCS for telemetry, GCS → vehicle for commands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Periodic vehicle heartbeat.
    Heartbeat {
        /// Current protocol-level mode.
        mode: ProtocolMode,
        /// Whether the motors are armed.
        armed: bool,
    },
    /// Periodic vehicle state telemetry.
    Status {
        /// East position (m, local frame).
        x: f64,
        /// North position (m, local frame).
        y: f64,
        /// Altitude above home (m).
        altitude: f64,
        /// Climb rate (m/s).
        climb_rate: f64,
        /// Index of the active mission item.
        mission_seq: u16,
        /// Whether the vehicle believes it is on the ground.
        landed: bool,
    },
    /// GCS request to arm or disarm.
    ArmDisarm {
        /// `true` to arm, `false` to disarm.
        arm: bool,
    },
    /// GCS request to change mode.
    SetMode {
        /// Requested mode.
        mode: ProtocolMode,
    },
    /// GCS direct takeoff command (used in guided mode).
    CommandTakeoff {
        /// Target altitude (m).
        altitude: f64,
    },
    /// GCS guided-mode reposition command ("fly to this point").
    CommandGoto {
        /// East coordinate (m, local frame).
        x: f64,
        /// North coordinate (m, local frame).
        y: f64,
        /// Altitude (m above home).
        z: f64,
    },
    /// Vehicle acknowledgement of a command.
    CommandAck {
        /// Which command is acknowledged.
        command: CommandKind,
        /// Whether it was accepted.
        result: AckResult,
    },
    /// GCS announces a mission upload of `count` items.
    MissionCount {
        /// Number of items to be uploaded.
        count: u16,
    },
    /// Vehicle requests mission item `seq`.
    MissionRequest {
        /// Requested item index.
        seq: u16,
    },
    /// GCS sends one mission item.
    MissionItemMsg {
        /// The item.
        item: MissionItem,
    },
    /// Vehicle acknowledges a completed (or failed) mission upload.
    MissionAck {
        /// `true` if the mission was accepted.
        accepted: bool,
    },
    /// Free-form status text (diagnostics only).
    StatusText {
        /// Severity, 0 = emergency … 7 = debug (MAVLink convention).
        severity: u8,
    },
}

impl Message {
    /// A numeric message identifier used by the wire codec.
    pub fn message_id(&self) -> u8 {
        match self {
            Message::Heartbeat { .. } => 0,
            Message::Status { .. } => 1,
            Message::ArmDisarm { .. } => 2,
            Message::SetMode { .. } => 3,
            Message::CommandTakeoff { .. } => 4,
            Message::CommandAck { .. } => 5,
            Message::MissionCount { .. } => 6,
            Message::MissionRequest { .. } => 7,
            Message::MissionItemMsg { .. } => 8,
            Message::MissionAck { .. } => 9,
            Message::StatusText { .. } => 10,
            Message::CommandGoto { .. } => 11,
        }
    }

    /// Returns `true` for messages that originate at the vehicle.
    pub fn is_telemetry(&self) -> bool {
        matches!(
            self,
            Message::Heartbeat { .. }
                | Message::Status { .. }
                | Message::CommandAck { .. }
                | Message::MissionRequest { .. }
                | Message::MissionAck { .. }
                | Message::StatusText { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_ids_are_unique() {
        let msgs = [
            Message::Heartbeat {
                mode: ProtocolMode::Auto,
                armed: false,
            },
            Message::Status {
                x: 0.0,
                y: 0.0,
                altitude: 0.0,
                climb_rate: 0.0,
                mission_seq: 0,
                landed: true,
            },
            Message::ArmDisarm { arm: true },
            Message::SetMode {
                mode: ProtocolMode::Land,
            },
            Message::CommandTakeoff { altitude: 20.0 },
            Message::CommandGoto {
                x: 1.0,
                y: 2.0,
                z: 3.0,
            },
            Message::CommandAck {
                command: CommandKind::Arm,
                result: AckResult::Accepted,
            },
            Message::MissionCount { count: 3 },
            Message::MissionRequest { seq: 0 },
            Message::MissionItemMsg {
                item: MissionItem::new(0, MissionCommand::Land),
            },
            Message::MissionAck { accepted: true },
            Message::StatusText { severity: 6 },
        ];
        let mut ids: Vec<u8> = msgs.iter().map(|m| m.message_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), msgs.len());
    }

    #[test]
    fn telemetry_classification() {
        assert!(Message::Heartbeat {
            mode: ProtocolMode::Auto,
            armed: true
        }
        .is_telemetry());
        assert!(Message::MissionRequest { seq: 1 }.is_telemetry());
        assert!(!Message::ArmDisarm { arm: true }.is_telemetry());
        assert!(!Message::MissionCount { count: 2 }.is_telemetry());
    }

    #[test]
    fn protocol_mode_display() {
        assert_eq!(ProtocolMode::ReturnToLaunch.to_string(), "RTL");
        assert_eq!(ProtocolMode::Auto.to_string(), "AUTO");
    }
}
