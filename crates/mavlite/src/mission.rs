//! The mission-upload handshake.
//!
//! MAVLink mission uploads are *vehicle driven*: the ground station
//! announces how many items it has ([`Message::MissionCount`]), then waits
//! for the vehicle to request each item in turn
//! ([`Message::MissionRequest`]) before finally receiving a
//! [`Message::MissionAck`]. The paper calls out two problems this creates
//! for model checking (§V.A): the possibility of deadlock when both sides
//! wait on each other, and the sheer difficulty of writing even simple
//! missions. [`MissionUploader`] encapsulates the ground-station side of
//! the handshake with an explicit timeout so a stalled upload is reported
//! rather than deadlocking the checker.

use crate::message::{Message, MissionItem};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ground-station side of a mission upload.
#[derive(Debug, Clone)]
pub struct MissionUploader {
    items: Vec<MissionItem>,
    state: UploadState,
    /// Number of ticks without protocol progress before the upload fails.
    timeout_ticks: u64,
    idle_ticks: u64,
}

/// Progress of an upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UploadState {
    /// The `MissionCount` announcement has not been sent yet.
    NotStarted,
    /// Waiting for the vehicle to request items (or ack).
    InProgress,
    /// The vehicle acknowledged the mission.
    Accepted,
    /// The vehicle rejected the mission.
    Rejected,
    /// The vehicle stopped responding.
    TimedOut,
}

impl fmt::Display for UploadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UploadState::NotStarted => "not started",
            UploadState::InProgress => "in progress",
            UploadState::Accepted => "accepted",
            UploadState::Rejected => "rejected",
            UploadState::TimedOut => "timed out",
        };
        f.write_str(s)
    }
}

impl MissionUploader {
    /// Creates an uploader for the given mission items.
    ///
    /// `timeout_ticks` bounds how many [`MissionUploader::tick`] calls may
    /// pass without protocol progress before the upload is marked
    /// [`UploadState::TimedOut`].
    pub fn new(items: Vec<MissionItem>, timeout_ticks: u64) -> Self {
        MissionUploader {
            items,
            state: UploadState::NotStarted,
            timeout_ticks: timeout_ticks.max(1),
            idle_ticks: 0,
        }
    }

    /// Current upload state.
    pub fn state(&self) -> UploadState {
        self.state
    }

    /// Returns `true` once the handshake has finished (in any terminal state).
    pub fn is_finished(&self) -> bool {
        matches!(
            self.state,
            UploadState::Accepted | UploadState::Rejected | UploadState::TimedOut
        )
    }

    /// The items being uploaded.
    pub fn items(&self) -> &[MissionItem] {
        &self.items
    }

    /// Advances the handshake one tick: consumes any vehicle messages and
    /// returns the messages the ground station must send in response.
    pub fn tick(&mut self, incoming: &[Message]) -> Vec<Message> {
        let mut out = Vec::new();
        match self.state {
            UploadState::NotStarted => {
                out.push(Message::MissionCount {
                    count: self.items.len() as u16,
                });
                self.state = UploadState::InProgress;
                self.idle_ticks = 0;
            }
            UploadState::InProgress => {
                let mut progressed = false;
                for msg in incoming {
                    match *msg {
                        Message::MissionRequest { seq } => {
                            progressed = true;
                            if let Some(item) = self.items.get(seq as usize) {
                                out.push(Message::MissionItemMsg { item: *item });
                            }
                        }
                        Message::MissionAck { accepted } => {
                            progressed = true;
                            self.state = if accepted {
                                UploadState::Accepted
                            } else {
                                UploadState::Rejected
                            };
                        }
                        _ => {}
                    }
                }
                if progressed {
                    self.idle_ticks = 0;
                } else {
                    self.idle_ticks += 1;
                    if self.idle_ticks >= self.timeout_ticks {
                        self.state = UploadState::TimedOut;
                    }
                }
            }
            _ => {}
        }
        out
    }

    /// Exports the uploader's full state as plain data for serialisation
    /// (the crate is dependency-free, so the caller owns the wire
    /// encoding). Exact inverse of [`MissionUploader::from_parts`].
    pub fn export_parts(&self) -> UploaderParts {
        UploaderParts {
            items: self.items.clone(),
            state: self.state,
            timeout_ticks: self.timeout_ticks,
            idle_ticks: self.idle_ticks,
        }
    }

    /// Rebuilds an uploader from [`MissionUploader::export_parts`] state.
    pub fn from_parts(parts: UploaderParts) -> Self {
        MissionUploader {
            items: parts.items,
            state: parts.state,
            timeout_ticks: parts.timeout_ticks,
            idle_ticks: parts.idle_ticks,
        }
    }
}

/// Plain-data export of a [`MissionUploader`]'s state (see
/// [`MissionUploader::export_parts`]).
#[derive(Debug, Clone, PartialEq)]
pub struct UploaderParts {
    /// The items being uploaded.
    pub items: Vec<MissionItem>,
    /// Current handshake state.
    pub state: UploadState,
    /// Ticks without progress before the upload fails.
    pub timeout_ticks: u64,
    /// Ticks elapsed since the last protocol progress.
    pub idle_ticks: u64,
}

/// Builds the "takeoff, fly a box, land" style mission used by the paper's
/// default workloads: takeoff to `altitude`, visit each waypoint, then the
/// given terminal command.
pub fn square_mission(altitude: f64, side: f64, land_at_home: bool) -> Vec<MissionItem> {
    use crate::message::MissionCommand as C;
    let mut items = vec![MissionItem::new(0, C::Takeoff { altitude })];
    let corners = [(side, 0.0), (side, side), (0.0, side), (0.0, 0.0)];
    for (i, (x, y)) in corners.iter().enumerate() {
        items.push(MissionItem::new(
            i as u16 + 1,
            C::Waypoint {
                x: *x,
                y: *y,
                z: altitude,
            },
        ));
    }
    let last_seq = items.len() as u16;
    if land_at_home {
        items.push(MissionItem::new(last_seq, C::Land));
    } else {
        items.push(MissionItem::new(last_seq, C::ReturnToLaunch));
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MissionCommand;

    fn items() -> Vec<MissionItem> {
        square_mission(20.0, 20.0, true)
    }

    #[test]
    fn square_mission_shape() {
        let m = items();
        assert_eq!(m.len(), 6);
        assert!(matches!(m[0].command, MissionCommand::Takeoff { altitude } if altitude == 20.0));
        assert!(matches!(m[5].command, MissionCommand::Land));
        // Sequence numbers are consecutive from zero.
        for (i, item) in m.iter().enumerate() {
            assert_eq!(item.seq as usize, i);
        }
        let rtl = square_mission(10.0, 5.0, false);
        assert!(matches!(
            rtl.last().unwrap().command,
            MissionCommand::ReturnToLaunch
        ));
    }

    #[test]
    fn upload_happy_path() {
        let mission = items();
        let mut uploader = MissionUploader::new(mission.clone(), 100);
        // First tick announces the count.
        let out = uploader.tick(&[]);
        assert_eq!(out, vec![Message::MissionCount { count: 6 }]);
        assert_eq!(uploader.state(), UploadState::InProgress);
        // Vehicle requests each item in turn.
        for seq in 0..6u16 {
            let out = uploader.tick(&[Message::MissionRequest { seq }]);
            assert_eq!(out.len(), 1);
            match out[0] {
                Message::MissionItemMsg { item } => assert_eq!(item.seq, seq),
                ref other => panic!("unexpected response {other:?}"),
            }
        }
        // Vehicle acks.
        let out = uploader.tick(&[Message::MissionAck { accepted: true }]);
        assert!(out.is_empty());
        assert_eq!(uploader.state(), UploadState::Accepted);
        assert!(uploader.is_finished());
    }

    #[test]
    fn upload_rejected() {
        let mut uploader = MissionUploader::new(items(), 100);
        uploader.tick(&[]);
        uploader.tick(&[Message::MissionAck { accepted: false }]);
        assert_eq!(uploader.state(), UploadState::Rejected);
    }

    #[test]
    fn upload_times_out_without_progress() {
        let mut uploader = MissionUploader::new(items(), 5);
        uploader.tick(&[]);
        for _ in 0..4 {
            uploader.tick(&[]);
            assert_eq!(uploader.state(), UploadState::InProgress);
        }
        uploader.tick(&[]);
        assert_eq!(uploader.state(), UploadState::TimedOut);
        assert!(uploader.is_finished());
    }

    #[test]
    fn unrelated_messages_do_not_reset_timeout() {
        let mut uploader = MissionUploader::new(items(), 3);
        uploader.tick(&[]);
        for _ in 0..3 {
            uploader.tick(&[Message::StatusText { severity: 6 }]);
        }
        assert_eq!(uploader.state(), UploadState::TimedOut);
    }

    #[test]
    fn export_parts_round_trips_mid_handshake() {
        let mut uploader = MissionUploader::new(items(), 5);
        uploader.tick(&[]);
        uploader.tick(&[Message::MissionRequest { seq: 0 }]);
        uploader.tick(&[]); // one idle tick accrued
        let parts = uploader.export_parts();
        let mut restored = MissionUploader::from_parts(parts.clone());
        assert_eq!(restored.export_parts(), parts);
        // Identical behaviour after restore: same responses, same timeout.
        for seq in 1..6u16 {
            assert_eq!(
                restored.tick(&[Message::MissionRequest { seq }]),
                uploader.tick(&[Message::MissionRequest { seq }])
            );
        }
        for _ in 0..5 {
            assert_eq!(restored.tick(&[]), uploader.tick(&[]));
        }
        assert_eq!(restored.state(), uploader.state());
        assert_eq!(restored.state(), UploadState::TimedOut);
    }

    #[test]
    fn out_of_range_request_is_ignored() {
        let mut uploader = MissionUploader::new(items(), 10);
        uploader.tick(&[]);
        let out = uploader.tick(&[Message::MissionRequest { seq: 99 }]);
        assert!(out.is_empty());
        assert_eq!(uploader.state(), UploadState::InProgress);
    }
}
