//! Batched lockstep stepping: one [`LaneBatch`] advances N sibling
//! scenarios ("lanes") through bit-identical physics and sensing in a
//! structure-of-arrays layout.
//!
//! # The shared-noise invariant
//!
//! Sibling scenarios in a campaign differ only in their fault plans, not
//! in their simulation seed: every run draws sensor noise from the same
//! `SimRng` stream. Crucially, the *number* of draws per step is
//! state-independent — noise is drawn even at zero standard deviation,
//! and the GPS epoch clock is purely time-driven — so two runs at the
//! same simulation time have consumed exactly the same prefix of the
//! stream, no matter how far their physical states have diverged. A
//! `LaneBatch` therefore holds **one** RNG for all lanes: each step it
//! draws the step's noise values once, in exactly the scalar
//! `SensorSuite::sample_into` order, and applies them to every lane.
//! The per-lane readings come out bit-identical to N independent scalar
//! simulators.
//!
//! The scalar [`Simulator`] remains the oracle: the kernels below are
//! line-by-line transcriptions of [`Simulator::step_into`],
//! `Quadcopter::step`, `MotorBank::step` and `SensorSuite::sample_into`,
//! and the tests in this module pin byte-equivalence per lane — including
//! evicting a lane at every possible step and finishing it scalar.
//!
//! # Lane lifecycle
//!
//! Lanes are created from a scalar simulator ([`LaneBatch::from_simulator`]),
//! forked by cloning an existing lane ([`LaneBatch::clone_lane`]), and
//! leave the batch either through [`LaneBatch::extract_lane`] (eviction:
//! the lane continues on the scalar path) or [`LaneBatch::lane_snapshot`]
//! (a checkpoint cut of one lane). Lane ids are stable across removals;
//! slot order (and therefore [`LaneBatch::step_lanes`] command order)
//! follows [`LaneBatch::lane_ids`].

use crate::environment::{Collision, Environment};
use crate::math::{clamp, Quat, Vec3};
use crate::rng::SimRng;
use crate::sensors::{SensorInstance, SensorKind, SensorSuite, SensorValue};
use crate::simulator::{PhysicalState, SimConfig, SimSnapshot, Simulator, StepOutput};
use crate::vehicle::{MotorBank, MotorCommands, Quadcopter, RigidBodyState, GRAVITY, MOTOR_COUNT};
use std::sync::Arc;

/// A batch of sibling simulations advanced in lockstep over
/// structure-of-arrays state. See the module docs for the invariants.
#[derive(Debug, Clone)]
pub struct LaneBatch {
    // --- static per-run data, identical across lanes ---
    config: SimConfig,
    env: Arc<Environment>,
    accel_bias: Vec<Vec3>,
    gyro_bias: Vec<Vec3>,
    // --- shared dynamic state (identical across lanes by the
    //     state-independent-draw invariant; see module docs) ---
    rng: SimRng,
    gps_interval: f64,
    last_gps_time: f64,
    time: f64,
    steps: u64,
    /// Motor spool time constant, pre-clamped by `MotorBank::new`.
    motor_time_constant: f64,
    // --- per-lane SoA state, one element (or stride) per lane slot ---
    ids: Vec<u64>,
    next_id: u64,
    px: Vec<f64>,
    py: Vec<f64>,
    pz: Vec<f64>,
    vx: Vec<f64>,
    vy: Vec<f64>,
    vz: Vec<f64>,
    ax: Vec<f64>,
    ay: Vec<f64>,
    az: Vec<f64>,
    qw: Vec<f64>,
    qx: Vec<f64>,
    qy: Vec<f64>,
    qz: Vec<f64>,
    wx: Vec<f64>,
    wy: Vec<f64>,
    wz: Vec<f64>,
    /// Realized motor throttles, lane-major, stride [`MOTOR_COUNT`].
    motors: Vec<f64>,
    on_ground: Vec<bool>,
    was_airborne: Vec<bool>,
    first_collision: Vec<Option<Collision>>,
    battery_remaining: Vec<f64>,
    /// Held GPS fixes, lane-major, stride = number of receivers.
    last_gps: Vec<Option<SensorValue>>,
    outputs: Vec<StepOutput>,
    // --- step scratch, rebuilt every step ---
    // snapshot: skip(step scratch, refilled from the shared RNG each step)
    noise: Vec<f64>,
    // snapshot: skip(step scratch, derived from last_gps each step)
    gps_fill: Vec<bool>,
    // snapshot: skip(step scratch, pre-step velocities for impact checks)
    pre_v: Vec<Vec3>,
    // snapshot: skip(step scratch, pre-step airborne flags)
    airborne_before: Vec<bool>,
    // snapshot: skip(step scratch, post-crash-override commands)
    eff: Vec<MotorCommands>,
}

impl LaneBatch {
    /// Wraps a scalar simulator as the first lane of a new batch,
    /// returning the batch and the lane's id. `output` must be the
    /// simulator's most recent step output (the batch keeps producing
    /// into per-lane output buffers exactly like `Simulator::step_into`).
    pub fn from_simulator(sim: Simulator, output: StepOutput) -> (Self, u64) {
        let Simulator {
            config,
            quad,
            env,
            sensors,
            time,
            steps,
            first_collision,
            was_airborne,
        } = sim;
        let Quadcopter {
            params: _,
            motors,
            state,
            on_ground,
        } = quad;
        let SensorSuite {
            config: _,
            rng,
            accel_bias,
            gyro_bias,
            last_gps,
            gps_interval,
            last_gps_time,
            battery_remaining,
        } = sensors;
        let batch = LaneBatch {
            config,
            env,
            accel_bias,
            gyro_bias,
            rng,
            gps_interval,
            last_gps_time,
            time,
            steps,
            motor_time_constant: motors.time_constant,
            ids: vec![0],
            next_id: 1,
            px: vec![state.position.x],
            py: vec![state.position.y],
            pz: vec![state.position.z],
            vx: vec![state.velocity.x],
            vy: vec![state.velocity.y],
            vz: vec![state.velocity.z],
            ax: vec![state.acceleration.x],
            ay: vec![state.acceleration.y],
            az: vec![state.acceleration.z],
            qw: vec![state.attitude.w],
            qx: vec![state.attitude.x],
            qy: vec![state.attitude.y],
            qz: vec![state.attitude.z],
            wx: vec![state.angular_velocity.x],
            wy: vec![state.angular_velocity.y],
            wz: vec![state.angular_velocity.z],
            motors: motors.realized.to_vec(),
            on_ground: vec![on_ground],
            was_airborne: vec![was_airborne],
            first_collision: vec![first_collision],
            battery_remaining: vec![battery_remaining],
            last_gps,
            outputs: vec![output],
            noise: Vec::new(),
            gps_fill: Vec::new(),
            pre_v: Vec::new(),
            airborne_before: Vec::new(),
            eff: Vec::new(),
        };
        (batch, 0)
    }

    /// Number of live lanes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` when the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Shared simulation time (every lane is at this time).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The shared simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Lane ids in slot order. [`LaneBatch::step_lanes`] expects its
    /// command slice in this order; the order changes when lanes leave.
    pub fn lane_ids(&self) -> &[u64] {
        &self.ids
    }

    /// The most recent step output of the given lane.
    pub fn output(&self, id: u64) -> &StepOutput {
        &self.outputs[self.slot(id)]
    }

    /// The first collision observed by the given lane, if any.
    pub fn first_collision(&self, id: u64) -> Option<Collision> {
        self.first_collision[self.slot(id)]
    }

    fn slot(&self, id: u64) -> usize {
        self.ids
            .iter()
            .position(|&i| i == id)
            .unwrap_or_else(|| panic!("lane {id} is not in the batch"))
    }

    fn gps_count(&self) -> usize {
        self.config.sensors.gps as usize
    }

    /// Forks a new lane as a bit-exact copy of lane `src`, returning the
    /// new lane's id. The shared RNG is *not* duplicated — that is the
    /// point: both lanes keep consuming the one stream their scalar
    /// counterparts would consume identically.
    pub fn clone_lane(&mut self, src: u64) -> u64 {
        let s = self.slot(src);
        let id = self.next_id;
        self.next_id += 1;
        self.ids.push(id);
        self.px.push(self.px[s]);
        self.py.push(self.py[s]);
        self.pz.push(self.pz[s]);
        self.vx.push(self.vx[s]);
        self.vy.push(self.vy[s]);
        self.vz.push(self.vz[s]);
        self.ax.push(self.ax[s]);
        self.ay.push(self.ay[s]);
        self.az.push(self.az[s]);
        self.qw.push(self.qw[s]);
        self.qx.push(self.qx[s]);
        self.qy.push(self.qy[s]);
        self.qz.push(self.qz[s]);
        self.wx.push(self.wx[s]);
        self.wy.push(self.wy[s]);
        self.wz.push(self.wz[s]);
        for m in 0..MOTOR_COUNT {
            let v = self.motors[s * MOTOR_COUNT + m];
            self.motors.push(v);
        }
        self.on_ground.push(self.on_ground[s]);
        self.was_airborne.push(self.was_airborne[s]);
        self.first_collision.push(self.first_collision[s]);
        self.battery_remaining.push(self.battery_remaining[s]);
        let g = self.gps_count();
        for r in 0..g {
            let fix = self.last_gps[s * g + r];
            self.last_gps.push(fix);
        }
        self.outputs.push(self.outputs[s].clone());
        id
    }

    /// Rebuilds the given lane as a standalone scalar [`Simulator`]
    /// without removing it from the batch (used for checkpoint cuts of a
    /// still-running lane).
    fn compose(&self, slot: usize) -> Simulator {
        let state = RigidBodyState {
            position: Vec3::new(self.px[slot], self.py[slot], self.pz[slot]),
            velocity: Vec3::new(self.vx[slot], self.vy[slot], self.vz[slot]),
            acceleration: Vec3::new(self.ax[slot], self.ay[slot], self.az[slot]),
            attitude: Quat {
                w: self.qw[slot],
                x: self.qx[slot],
                y: self.qy[slot],
                z: self.qz[slot],
            },
            angular_velocity: Vec3::new(self.wx[slot], self.wy[slot], self.wz[slot]),
        };
        let mut realized = [0.0; MOTOR_COUNT];
        realized.copy_from_slice(&self.motors[slot * MOTOR_COUNT..(slot + 1) * MOTOR_COUNT]);
        let g = self.gps_count();
        let quad = Quadcopter {
            params: self.config.vehicle.clone(),
            motors: MotorBank {
                realized,
                time_constant: self.motor_time_constant,
            },
            state,
            on_ground: self.on_ground[slot],
        };
        let sensors = SensorSuite {
            config: self.config.sensors.clone(),
            rng: self.rng.clone(),
            accel_bias: self.accel_bias.clone(),
            gyro_bias: self.gyro_bias.clone(),
            last_gps: self.last_gps[slot * g..(slot + 1) * g].to_vec(),
            gps_interval: self.gps_interval,
            last_gps_time: self.last_gps_time,
            battery_remaining: self.battery_remaining[slot],
        };
        Simulator {
            config: self.config.clone(),
            quad,
            env: Arc::clone(&self.env),
            sensors,
            time: self.time,
            steps: self.steps,
            first_collision: self.first_collision[slot],
            was_airborne: self.was_airborne[slot],
        }
    }

    /// Captures a [`SimSnapshot`] of one lane, bit-identical to the
    /// snapshot a scalar simulator in the same state would produce.
    pub fn lane_snapshot(&self, id: u64) -> SimSnapshot {
        SimSnapshot {
            sim: self.compose(self.slot(id)),
        }
    }

    /// Evicts a lane: removes it from the batch and returns it as a
    /// scalar [`Simulator`] plus its most recent step output, ready to
    /// continue on the scalar path bit-identically.
    pub fn extract_lane(&mut self, id: u64) -> (Simulator, StepOutput) {
        let slot = self.slot(id);
        let sim = self.compose(slot);
        let last = self.ids.len() - 1;
        self.ids.swap_remove(slot);
        self.px.swap_remove(slot);
        self.py.swap_remove(slot);
        self.pz.swap_remove(slot);
        self.vx.swap_remove(slot);
        self.vy.swap_remove(slot);
        self.vz.swap_remove(slot);
        self.ax.swap_remove(slot);
        self.ay.swap_remove(slot);
        self.az.swap_remove(slot);
        self.qw.swap_remove(slot);
        self.qx.swap_remove(slot);
        self.qy.swap_remove(slot);
        self.qz.swap_remove(slot);
        self.wx.swap_remove(slot);
        self.wy.swap_remove(slot);
        self.wz.swap_remove(slot);
        Self::swap_remove_strided(&mut self.motors, slot, last, MOTOR_COUNT);
        self.on_ground.swap_remove(slot);
        self.was_airborne.swap_remove(slot);
        self.first_collision.swap_remove(slot);
        self.battery_remaining.swap_remove(slot);
        let g = self.gps_count();
        Self::swap_remove_strided(&mut self.last_gps, slot, last, g);
        let output = self.outputs.swap_remove(slot);
        (sim, output)
    }

    fn swap_remove_strided<T: Copy>(arr: &mut Vec<T>, slot: usize, last: usize, stride: usize) {
        if slot != last {
            for k in 0..stride {
                arr.swap(slot * stride + k, last * stride + k);
            }
        }
        arr.truncate(last * stride);
    }

    /// Advances every lane by one fixed time-step. `commands[i]` drives
    /// the lane at `lane_ids()[i]`. Each lane's physics, sensing and
    /// step output are bit-identical to a scalar [`Simulator::step_into`]
    /// with the same command.
    pub fn step_lanes(&mut self, commands: &[MotorCommands]) {
        let lanes = self.ids.len();
        debug_assert_eq!(commands.len(), lanes, "one command per live lane");
        let dt = self.config.dt;
        debug_assert!(dt > 0.0, "time step must be positive");
        let params = &self.config.vehicle;
        let noise_cfg = &self.config.sensors.noise;

        // Wind is a pure function of the shared clock.
        let wind = self.env.wind().at(self.time);

        // Stage 1 — airborne bookkeeping and the post-crash command
        // override (`Simulator::step_into` preamble).
        self.airborne_before.clear();
        self.eff.clear();
        self.pre_v.clear();
        for (lane, command) in commands.iter().enumerate() {
            let airborne = !self.on_ground[lane];
            self.airborne_before.push(airborne);
            self.was_airborne[lane] = self.was_airborne[lane] || airborne;
            if self.first_collision[lane].is_some() {
                // After a crash the airframe is destroyed; motors stop.
                for m in 0..MOTOR_COUNT {
                    self.motors[lane * MOTOR_COUNT + m] = 0.0;
                }
                self.eff.push(MotorCommands::IDLE);
            } else {
                self.eff.push(*command);
            }
            self.pre_v
                .push(Vec3::new(self.vx[lane], self.vy[lane], self.vz[lane]));
        }

        // Stage 2 — first-order motor spool (`MotorBank::step`).
        let alpha = clamp(dt / self.motor_time_constant, 0.0, 1.0);
        for lane in 0..lanes {
            for i in 0..MOTOR_COUNT {
                let target = clamp(self.eff[lane].throttle[i], 0.0, 1.0);
                let idx = lane * MOTOR_COUNT + i;
                self.motors[idx] += (target - self.motors[idx]) * alpha;
            }
        }

        // Stage 3 — rigid-body dynamics (`Quadcopter::step`).
        for lane in 0..lanes {
            let mut realized = [0.0; MOTOR_COUNT];
            realized.copy_from_slice(&self.motors[lane * MOTOR_COUNT..(lane + 1) * MOTOR_COUNT]);

            // Per-motor thrust (N).
            let thrusts: [f64; MOTOR_COUNT] = realized.map(|t| t * params.max_motor_thrust);
            let total_thrust: f64 = thrusts.iter().sum();

            // Torques from the X mixer geometry. Motor order: FR, BL, FL, BR.
            let l = params.arm_length * std::f64::consts::FRAC_1_SQRT_2;
            let roll_torque = l * (thrusts[1] + thrusts[2] - thrusts[0] - thrusts[3]);
            let pitch_torque = l * (thrusts[0] + thrusts[2] - thrusts[1] - thrusts[3]);
            let yaw_torque =
                params.yaw_torque_coefficient * (thrusts[0] + thrusts[1] - thrusts[2] - thrusts[3]);

            let angular_velocity = Vec3::new(self.wx[lane], self.wy[lane], self.wz[lane]);
            let torque = Vec3::new(roll_torque, pitch_torque, yaw_torque)
                - angular_velocity * params.angular_drag;
            let angular_accel = Vec3::new(
                torque.x / params.inertia_xy,
                torque.y / params.inertia_xy,
                torque.z / params.inertia_z,
            );
            let mut omega = angular_velocity + angular_accel * dt;
            let attitude_in = Quat {
                w: self.qw[lane],
                x: self.qx[lane],
                y: self.qy[lane],
                z: self.qz[lane],
            };
            let mut attitude = attitude_in.integrate(omega, dt);

            // Linear dynamics (world frame).
            let thrust_world = attitude.rotate(Vec3::new(0.0, 0.0, total_thrust));
            let old_velocity = Vec3::new(self.vx[lane], self.vy[lane], self.vz[lane]);
            let air_velocity = old_velocity - wind;
            let drag = -air_velocity * params.linear_drag;
            let gravity = Vec3::new(0.0, 0.0, -GRAVITY * params.mass);
            let force = thrust_world + drag + gravity;
            let mut accel = force / params.mass;

            let mut velocity = old_velocity + accel * dt;
            let mut position =
                Vec3::new(self.px[lane], self.py[lane], self.pz[lane]) + velocity * dt;

            // Ground contact.
            if position.z <= 0.0 {
                position.z = 0.0;
                if velocity.z < 0.0 {
                    velocity = Vec3::new(0.0, 0.0, 0.0);
                    omega = Vec3::ZERO;
                }
                self.on_ground[lane] = true;
                let yaw = attitude.yaw();
                attitude = Quat::from_euler(0.0, 0.0, yaw);
                if total_thrust <= params.hover_thrust() {
                    accel = Vec3::ZERO;
                }
            } else {
                self.on_ground[lane] = false;
            }

            self.px[lane] = position.x;
            self.py[lane] = position.y;
            self.pz[lane] = position.z;
            self.vx[lane] = velocity.x;
            self.vy[lane] = velocity.y;
            self.vz[lane] = velocity.z;
            self.ax[lane] = accel.x;
            self.ay[lane] = accel.y;
            self.az[lane] = accel.z;
            self.qw[lane] = attitude.w;
            self.qx[lane] = attitude.x;
            self.qy[lane] = attitude.y;
            self.qz[lane] = attitude.z;
            self.wx[lane] = omega.x;
            self.wy[lane] = omega.y;
            self.wz[lane] = omega.z;
            debug_assert!(
                position.is_finite() && velocity.is_finite() && attitude.is_finite(),
                "dynamics diverged in lane {lane}"
            );
        }

        // Stage 4 — the shared clock advances once for all lanes.
        self.time += dt;
        self.steps += 1;

        // Stage 5 — collision detection (`Simulator::step_into` middle).
        for lane in 0..lanes {
            let position = Vec3::new(self.px[lane], self.py[lane], self.pz[lane]);
            let velocity = Vec3::new(self.vx[lane], self.vy[lane], self.vz[lane]);
            let impact_velocity = if position.z <= 1e-9 && self.airborne_before[lane] {
                self.pre_v[lane]
            } else {
                velocity
            };
            let collision =
                self.env
                    .check_collision(position, impact_velocity, self.was_airborne[lane]);
            if let Some(c) = collision {
                if self.first_collision[lane].is_none() {
                    self.first_collision[lane] = Some(c);
                }
                for m in 0..MOTOR_COUNT {
                    self.motors[lane * MOTOR_COUNT + m] = 0.0;
                }
            }
            if position.z <= 1e-9 {
                self.was_airborne[lane] = false;
            }
            self.outputs[lane].collision = collision;
        }

        // Stage 6 — sensor sampling (`SensorSuite::sample_into`). The
        // noise values for this step are drawn once from the shared RNG,
        // in exactly the scalar per-instance order, then applied to every
        // lane; see the module docs for why the counts (and therefore the
        // stream position) cannot depend on lane state.
        let sensors = &self.config.sensors;
        let g = self.gps_count();
        let gps_epoch =
            self.last_gps_time < 0.0 || self.time - self.last_gps_time >= self.gps_interval;
        if gps_epoch {
            self.last_gps_time = self.time;
        }
        self.gps_fill.clear();
        for r in 0..g {
            let fill = gps_epoch || self.last_gps[r].is_none();
            debug_assert!(
                (0..lanes).all(|lane| self.last_gps[lane * g + r].is_none()
                    == self.last_gps[r].is_none()),
                "held-fix presence must be uniform across lockstep lanes"
            );
            self.gps_fill.push(fill);
        }
        self.noise.clear();
        for _ in 0..sensors.accelerometers {
            for _ in 0..3 {
                let v = self.rng.normal(0.0, noise_cfg.accel);
                self.noise.push(v);
            }
        }
        for _ in 0..sensors.gyroscopes {
            for _ in 0..3 {
                let v = self.rng.normal(0.0, noise_cfg.gyro);
                self.noise.push(v);
            }
        }
        for r in 0..g {
            if self.gps_fill[r] {
                let h0 = self.rng.normal(0.0, noise_cfg.gps_horizontal);
                let h1 = self.rng.normal(0.0, noise_cfg.gps_horizontal);
                let v = self.rng.normal(0.0, noise_cfg.gps_vertical);
                let s0 = self.rng.normal(0.0, noise_cfg.gps_velocity);
                let s1 = self.rng.normal(0.0, noise_cfg.gps_velocity);
                let s2 = self.rng.normal(0.0, noise_cfg.gps_velocity);
                self.noise.extend([h0, h1, v, s0, s1, s2]);
            }
        }
        for _ in 0..sensors.barometers {
            let v = self.rng.normal(0.0, noise_cfg.baro);
            self.noise.push(v);
        }
        for _ in 0..sensors.compasses {
            let v = self.rng.normal(0.0, noise_cfg.compass);
            self.noise.push(v);
        }
        for _ in 0..sensors.batteries {
            let v = self.rng.normal(0.0, noise_cfg.battery_voltage);
            self.noise.push(v);
        }

        for lane in 0..lanes {
            let state = RigidBodyState {
                position: Vec3::new(self.px[lane], self.py[lane], self.pz[lane]),
                velocity: Vec3::new(self.vx[lane], self.vy[lane], self.vz[lane]),
                acceleration: Vec3::new(self.ax[lane], self.ay[lane], self.az[lane]),
                attitude: Quat {
                    w: self.qw[lane],
                    x: self.qx[lane],
                    y: self.qy[lane],
                    z: self.qz[lane],
                },
                angular_velocity: Vec3::new(self.wx[lane], self.wy[lane], self.wz[lane]),
            };
            let mean_throttle = self.eff[lane].mean();

            // Battery drain: idle draw plus throttle-proportional draw.
            let drain_rate =
                (0.15 + 0.85 * mean_throttle.clamp(0.0, 1.0)) / sensors.battery_endurance_s;
            self.battery_remaining[lane] =
                (self.battery_remaining[lane] - drain_rate * dt).max(0.0);

            // Specific force measured by an accelerometer: f = R^T (a + g·ẑ).
            let specific_force_world = state.acceleration + Vec3::new(0.0, 0.0, GRAVITY);
            let specific_force_body = state.attitude.rotate_inverse(specific_force_world);

            let readings = &mut self.outputs[lane].readings;
            readings.clear();
            let mut cur = 0usize;
            for idx in 0..sensors.accelerometers {
                let bias = self.accel_bias[idx as usize];
                let n = Vec3::new(self.noise[cur], self.noise[cur + 1], self.noise[cur + 2]);
                cur += 3;
                readings.push(crate::sensors::SensorReading {
                    instance: SensorInstance::new(SensorKind::Accelerometer, idx),
                    time: self.time,
                    value: SensorValue::Acceleration(specific_force_body + bias + n),
                });
            }
            for idx in 0..sensors.gyroscopes {
                let bias = self.gyro_bias[idx as usize];
                let n = Vec3::new(self.noise[cur], self.noise[cur + 1], self.noise[cur + 2]);
                cur += 3;
                readings.push(crate::sensors::SensorReading {
                    instance: SensorInstance::new(SensorKind::Gyroscope, idx),
                    time: self.time,
                    value: SensorValue::AngularRate(state.angular_velocity + bias + n),
                });
            }
            for idx in 0..sensors.gps {
                let r = idx as usize;
                if self.gps_fill[r] {
                    let fix = SensorValue::GpsFix {
                        position: state.position
                            + Vec3::new(self.noise[cur], self.noise[cur + 1], self.noise[cur + 2]),
                        velocity: state.velocity
                            + Vec3::new(
                                self.noise[cur + 3],
                                self.noise[cur + 4],
                                self.noise[cur + 5],
                            ),
                        satellites: 12,
                    };
                    cur += 6;
                    self.last_gps[lane * g + r] = Some(fix);
                }
                let held = self.last_gps[lane * g + r];
                debug_assert!(held.is_some(), "gps fix populated above");
                if let Some(value) = held {
                    readings.push(crate::sensors::SensorReading {
                        instance: SensorInstance::new(SensorKind::Gps, idx),
                        time: self.time,
                        value,
                    });
                }
            }
            for idx in 0..sensors.barometers {
                let n = self.noise[cur];
                cur += 1;
                readings.push(crate::sensors::SensorReading {
                    instance: SensorInstance::new(SensorKind::Barometer, idx),
                    time: self.time,
                    value: SensorValue::PressureAltitude(state.position.z + n),
                });
            }
            let yaw = state.attitude.yaw();
            for idx in 0..sensors.compasses {
                let n = self.noise[cur];
                cur += 1;
                readings.push(crate::sensors::SensorReading {
                    instance: SensorInstance::new(SensorKind::Compass, idx),
                    time: self.time,
                    value: SensorValue::MagneticHeading(crate::math::wrap_angle(yaw + n)),
                });
            }
            for idx in 0..sensors.batteries {
                let n = self.noise[cur];
                cur += 1;
                let voltage = 10.5 + 2.1 * self.battery_remaining[lane] - 0.4 * mean_throttle + n;
                readings.push(crate::sensors::SensorReading {
                    instance: SensorInstance::new(SensorKind::Battery, idx),
                    time: self.time,
                    value: SensorValue::BatteryStatus {
                        voltage,
                        remaining: self.battery_remaining[lane],
                    },
                });
            }
            debug_assert_eq!(cur, self.noise.len(), "every drawn value consumed");

            // Stage 7 — fences and the packed physical state
            // (`Simulator::step_into` tail).
            let output = &mut self.outputs[lane];
            output.violated_fences.clear();
            self.env
                .violated_fences_into(state.position, &mut output.violated_fences);
            output.state = PhysicalState {
                time: self.time,
                position: state.position,
                velocity: state.velocity,
                acceleration: state.acceleration,
                heading: yaw,
                on_ground: self.on_ground[lane],
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Environment;
    use crate::sensors::SensorSuiteConfig;
    use crate::vehicle::VehicleParams;

    /// A primed scalar simulator: one IDLE step so every GPS receiver
    /// holds a fix (mirrors how campaign runs prime before the loop),
    /// then repositioned to a falling start so collision paths get hit.
    fn primed_sim(airborne: bool) -> (Simulator, StepOutput) {
        let config = SimConfig {
            dt: 0.005,
            vehicle: VehicleParams::default(),
            sensors: SensorSuiteConfig::iris(),
            seed: 7,
        };
        let mut sim = Simulator::new_shared(config, Arc::new(Environment::open_field()));
        let mut output = StepOutput::empty();
        sim.step_into(&MotorCommands::IDLE, &mut output);
        if airborne {
            let mut state = *sim.true_state();
            state.position.z = 5.0;
            state.velocity = Vec3::new(0.3, -0.2, -3.0);
            sim.set_true_state(state);
        }
        (sim, output)
    }

    /// Per-step command scripts for up to three diverging lanes. Lane 0
    /// free-falls into a crash, lane 1 throttles up and recovers, lane 2
    /// flies asymmetrically — so the batch mixes crashed, airborne and
    /// grounded lanes while sharing one RNG stream.
    fn script(lane: usize, step: usize) -> MotorCommands {
        match lane {
            0 => MotorCommands::uniform(0.1),
            1 => MotorCommands::uniform(if step < 40 { 0.9 } else { 0.45 }),
            _ => MotorCommands::mix(0.7, 0.015, -0.02, 0.01),
        }
    }

    fn assert_outputs_equal(a: &StepOutput, b: &StepOutput, context: &str) {
        assert_eq!(a, b, "{context}");
    }

    #[test]
    fn single_lane_matches_scalar_bitwise() {
        let (sim, output) = primed_sim(true);
        let mut scalar = sim.clone();
        let mut scalar_out = output.clone();
        let (mut batch, lane) = LaneBatch::from_simulator(sim, output);
        for step in 0..240 {
            let cmd = script(0, step);
            scalar.step_into(&cmd, &mut scalar_out);
            batch.step_lanes(&[cmd]);
            assert_outputs_equal(batch.output(lane), &scalar_out, "single lane step");
            assert_eq!(batch.time(), scalar.time());
        }
        assert!(
            scalar.first_collision().is_some(),
            "script should crash the free-falling lane"
        );
        let (evicted, evicted_out) = batch.extract_lane(lane);
        assert_outputs_equal(&evicted_out, &scalar_out, "extracted output");
        assert_eq!(evicted.first_collision(), scalar.first_collision());
        assert_eq!(evicted.steps(), scalar.steps());
    }

    #[test]
    fn forked_lanes_match_independent_scalar_runs() {
        // Three *independent* scalar runs that share a command prefix …
        let mut scalars = Vec::new();
        for lane in 0..3usize {
            let (mut sim, mut out) = primed_sim(true);
            for step in 0..200 {
                let cmd = if step < 30 {
                    script(2, step)
                } else {
                    script(lane, step)
                };
                sim.step_into(&cmd, &mut out);
            }
            scalars.push((sim, out));
        }
        // … versus one batch forked from a single lane at the divergence
        // point. The forks share the leader's RNG stream; equality here
        // is exactly the state-independent-draw invariant.
        let (sim, output) = primed_sim(true);
        let (mut batch, l0) = LaneBatch::from_simulator(sim, output);
        for step in 0..30 {
            batch.step_lanes(&[script(2, step)]);
        }
        let l1 = batch.clone_lane(l0);
        let l2 = batch.clone_lane(l0);
        for step in 30..200 {
            let cmds: Vec<MotorCommands> = batch
                .lane_ids()
                .iter()
                .map(|&id| {
                    let lane = [l0, l1, l2].iter().position(|&l| l == id).unwrap();
                    script(lane, step)
                })
                .collect();
            batch.step_lanes(&cmds);
        }
        for (lane, id) in [l0, l1, l2].into_iter().enumerate() {
            assert_outputs_equal(
                batch.output(id),
                &scalars[lane].1,
                &format!("forked lane {lane} final step"),
            );
        }
    }

    #[test]
    fn evicting_a_lane_at_every_step_is_bit_identical() {
        const HORIZON: usize = 200;
        // Reference: two independent scalar runs, outputs recorded per step.
        let mut reference: Vec<Vec<StepOutput>> = Vec::new();
        for lane in 0..2usize {
            let (mut sim, mut out) = primed_sim(true);
            let mut outs = Vec::new();
            for step in 0..HORIZON {
                sim.step_into(&script(lane, step), &mut out);
                outs.push(out.clone());
            }
            reference.push(outs);
        }
        for evict_at in 0..HORIZON {
            let (sim, output) = primed_sim(true);
            let (mut batch, l0) = LaneBatch::from_simulator(sim, output);
            let l1 = batch.clone_lane(l0);
            for step in 0..evict_at {
                let cmds: Vec<MotorCommands> = batch
                    .lane_ids()
                    .iter()
                    .map(|&id| script(if id == l0 { 0 } else { 1 }, step))
                    .collect();
                batch.step_lanes(&cmds);
            }
            let (mut evicted, mut out) = batch.extract_lane(l1);
            // `step` drives two parallel reference traces, not one slice.
            #[allow(clippy::needless_range_loop)]
            for step in evict_at..HORIZON {
                evicted.step_into(&script(1, step), &mut out);
                assert_eq!(
                    &out, &reference[1][step],
                    "evicted-at-{evict_at} lane, step {step}"
                );
                // The remaining lane keeps batching, unaffected.
                batch.step_lanes(&[script(0, step)]);
                assert_eq!(
                    batch.output(l0),
                    &reference[0][step],
                    "surviving lane after eviction at {evict_at}, step {step}"
                );
            }
        }
    }

    #[test]
    fn lane_snapshot_restores_bit_identical_scalar() {
        let (sim, output) = primed_sim(true);
        let (mut batch, l0) = LaneBatch::from_simulator(sim, output);
        let l1 = batch.clone_lane(l0);
        for step in 0..50 {
            let cmds: Vec<MotorCommands> = batch
                .lane_ids()
                .iter()
                .map(|&id| script(if id == l0 { 0 } else { 1 }, step))
                .collect();
            batch.step_lanes(&cmds);
        }
        // A snapshot of lane 1 restored to a scalar simulator must track
        // the still-batched lane 1 exactly.
        let mut restored = batch.lane_snapshot(l1).into_restored();
        let mut out = batch.output(l1).clone();
        for step in 50..150 {
            restored.step_into(&script(1, step), &mut out);
            let cmds: Vec<MotorCommands> = batch
                .lane_ids()
                .iter()
                .map(|&id| script(if id == l0 { 0 } else { 1 }, step))
                .collect();
            batch.step_lanes(&cmds);
            assert_eq!(&out, batch.output(l1), "restored snapshot step {step}");
        }
    }

    #[test]
    fn ground_start_lane_matches_scalar() {
        // A never-airborne lane (spool-up from the pad) exercises the
        // ground-contact clamp and the hover-thrust accel zeroing.
        let (sim, output) = primed_sim(false);
        let mut scalar = sim.clone();
        let mut scalar_out = output.clone();
        let (mut batch, lane) = LaneBatch::from_simulator(sim, output);
        for step in 0..300 {
            let cmd = MotorCommands::uniform(if step < 120 { 0.2 } else { 0.8 });
            scalar.step_into(&cmd, &mut scalar_out);
            batch.step_lanes(&[cmd]);
            assert_outputs_equal(batch.output(lane), &scalar_out, "ground start step");
        }
        assert!(!scalar.physical_state().on_ground, "climb should lift off");
    }
}
