//! Minimal length-prefixed binary codec used by the persistent snapshot
//! store.
//!
//! The store (see `avis::store` in `avis-core`) persists keyframe+delta
//! chains to disk; every snapshot-bearing type hand-rolls an
//! `encode`/`decode` pair against [`ByteWriter`]/[`ByteReader`] so the
//! workspace stays dependency-free. The format is deliberately boring:
//!
//! - all integers little-endian, `usize` widened to `u64`,
//! - `f64` via `to_bits()` so round-trips are bit-exact (NaN payloads and
//!   signed zeros survive),
//! - collections and byte strings length-prefixed with a `u64` count,
//! - `Option<T>` as a one-byte tag (0 = `None`, 1 = `Some`).
//!
//! Decoding is defensive, never panicking on corrupt input: every read
//! returns a [`CodecError`] and sequence counts are sanity-checked against
//! the remaining buffer so a bit-flipped length prefix cannot trigger a
//! pathological allocation. The store treats any decode error as a corrupt
//! blob and falls back to a cold start.

use std::fmt;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// 64-bit FNV-1a over a byte string — the content-address function for
/// store blobs and [`crate::cow`] chunks. Kept here so every crate hashes
/// identically; the same function keys the in-memory snapshot tier.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Error produced when decoding a malformed or truncated buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was fully read.
    UnexpectedEof,
    /// The bytes were readable but semantically invalid (bad enum tag,
    /// implausible length prefix, trailing garbage, ...).
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => f.write_str("unexpected end of buffer"),
            CodecError::Malformed(what) => write!(f, "malformed value: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Shorthand result type for decode operations.
pub type CodecResult<T> = Result<T, CodecError>;

/// Append-only byte buffer with little-endian primitive writers.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u16` little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64` little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its bit pattern (bit-exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes a length-prefixed sequence using `f` per element.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.usize(items.len());
        for item in items {
            f(self, item);
        }
    }

    /// Writes an `Option` as a one-byte tag plus the payload if present.
    pub fn option<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1);
                f(self, inner);
            }
        }
    }
}

/// Cursor over an encoded buffer with checked little-endian readers.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — catches blobs with
    /// trailing garbage (a symptom of format skew or corruption).
    pub fn finish(&self) -> CodecResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes after value"))
        }
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn bool(&mut self) -> CodecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool tag")),
        }
    }

    /// Reads a `u16` little-endian.
    pub fn u16(&mut self) -> CodecResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32` little-endian.
    pub fn u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` little-endian.
    pub fn u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `i64` little-endian.
    pub fn i64(&mut self) -> CodecResult<i64> {
        Ok(self.u64()? as i64)
    }

    /// Reads a `usize`, rejecting values that overflow the platform width.
    pub fn usize(&mut self) -> CodecResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Malformed("usize overflow"))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a count prefix, sanity-checked so each counted element has at
    /// least `min_elem_bytes` bytes left in the buffer. A corrupt length
    /// can then only over-read (caught by `UnexpectedEof`), never trigger
    /// a multi-gigabyte allocation.
    fn checked_len(&mut self, min_elem_bytes: usize) -> CodecResult<usize> {
        let len = self.usize()?;
        let need = len.checked_mul(min_elem_bytes.max(1));
        match need {
            Some(need) if need <= self.remaining() => Ok(len),
            _ => Err(CodecError::Malformed("implausible length prefix")),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> CodecResult<Vec<u8>> {
        let len = self.checked_len(1)?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CodecResult<String> {
        String::from_utf8(self.bytes()?).map_err(|_| CodecError::Malformed("utf-8 string"))
    }

    /// Reads a length-prefixed sequence using `f` per element.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> CodecResult<T>,
    ) -> CodecResult<Vec<T>> {
        let len = self.checked_len(1)?;
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Reads an `Option` written by [`ByteWriter::option`].
    pub fn option<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> CodecResult<T>,
    ) -> CodecResult<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            _ => Err(CodecError::Malformed("option tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.bool(true);
        w.u16(65535);
        w.u32(123_456);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.usize(99);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("héllo");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 99);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn seq_and_option_round_trip() {
        let mut w = ByteWriter::new();
        w.seq(&[1.5f64, -2.25, 3.0], |w, v| w.f64(*v));
        w.option(Some(&"x".to_string()), |w, s| w.str(s));
        w.option::<String>(None, |w, s| w.str(s));
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.seq(|r| r.f64()).unwrap(), vec![1.5, -2.25, 3.0]);
        assert_eq!(r.option(|r| r.str()).unwrap(), Some("x".to_string()));
        assert_eq!(r.option(|r| r.str()).unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_buffer_errors() {
        let mut w = ByteWriter::new();
        w.u64(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..4]);
        assert_eq!(r.u64(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn implausible_length_is_rejected_without_allocation() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX / 2); // absurd element count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.seq(|r| r.u8()), Err(CodecError::Malformed(_))));
    }

    #[test]
    fn bad_tags_are_malformed() {
        let bytes = [2u8];
        assert!(matches!(
            ByteReader::new(&bytes).bool(),
            Err(CodecError::Malformed(_))
        ));
        assert!(matches!(
            ByteReader::new(&bytes).option(|r| r.u8()),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }
}
