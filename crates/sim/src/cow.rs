//! A copy-on-write, chunked append-only vector for O(1) snapshotting.
//!
//! [`CowVec`] is the persistent-vector-style backbone of the checkpoint
//! tree: a run's growing history (trace samples, firmware logs, injector
//! records) appends to a plain mutable *tail*, and at snapshot time the
//! tail is *sealed* into an immutable `Arc`-shared prefix chunk. A
//! snapshot is then just a clone of the chunk list — O(chunks), not
//! O(elements) — and every snapshot along a run shares the sealed chunks
//! structurally instead of deep-copying the history.
//!
//! The aliasing contract is the whole point: once a chunk is sealed it is
//! never mutated, so a forked run appending to *its* tail (and sealing
//! *its own* later chunks) can never perturb the prefix another snapshot
//! holds. `tests/snapshot_fidelity.rs` pins this property.

use crate::codec::{fnv1a, ByteReader, ByteWriter, CodecError, CodecResult};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// Write side of a content-addressed chunk store.
///
/// [`CowVec::encode_chunked`] hands each sealed chunk's encoded bytes to
/// the sink and records only the returned content hash inline; the sink
/// owns deduplication (two snapshots whose histories share a chunk
/// produce byte-identical chunk encodings, hence one stored blob).
pub trait ChunkSink {
    /// Stores (or dedups) a chunk blob, returning its FNV-1a content
    /// hash. Implementations must return [`fnv1a`] of `bytes` so hashes
    /// are stable across processes.
    fn put_chunk(&mut self, bytes: Vec<u8>) -> u64;
}

/// Read side of a content-addressed chunk store.
pub trait ChunkSource {
    /// Fetches a chunk blob previously stored under `hash`.
    fn get_chunk(&mut self, hash: u64) -> Option<Vec<u8>>;
}

/// In-memory [`ChunkSink`]/[`ChunkSource`] used by round-trip tests (the
/// disk-backed implementation lives in `avis::store`).
#[derive(Debug, Default)]
pub struct MemoryChunkStore {
    chunks: BTreeMap<u64, Vec<u8>>,
    /// Chunk puts that found their hash already present.
    pub dedup_hits: u64,
}

impl MemoryChunkStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryChunkStore::default()
    }

    /// Number of distinct chunk blobs held.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the store holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Total stored chunk bytes.
    pub fn total_bytes(&self) -> usize {
        self.chunks.values().map(Vec::len).sum()
    }

    /// Corrupts the stored chunk `hash` (test helper for the quarantine
    /// paths): flips one byte in place.
    pub fn corrupt_chunk(&mut self, hash: u64) -> bool {
        match self.chunks.get_mut(&hash) {
            Some(bytes) if !bytes.is_empty() => {
                bytes[0] ^= 0xff;
                true
            }
            _ => false,
        }
    }
}

impl ChunkSink for MemoryChunkStore {
    fn put_chunk(&mut self, bytes: Vec<u8>) -> u64 {
        let hash = fnv1a(&bytes);
        if let std::collections::btree_map::Entry::Vacant(slot) = self.chunks.entry(hash) {
            slot.insert(bytes);
        } else {
            self.dedup_hits += 1;
        }
        hash
    }
}

impl ChunkSource for MemoryChunkStore {
    fn get_chunk(&mut self, hash: u64) -> Option<Vec<u8>> {
        self.chunks.get(&hash).cloned()
    }
}

/// An append-only vector whose history is shared between clones as
/// immutable `Arc` chunks (see the [module docs](self)).
#[derive(Clone)]
pub struct CowVec<T> {
    /// Sealed, immutable prefix chunks, in order. Shared between clones.
    chunks: Vec<Arc<[T]>>,
    /// Elements in the sealed prefix (sum of chunk lengths).
    prefix_len: usize,
    /// The mutable tail: appends land here until the next seal.
    tail: Vec<T>,
}

impl<T: Clone> CowVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        CowVec {
            chunks: Vec::new(),
            prefix_len: 0,
            tail: Vec::new(),
        }
    }

    /// An empty vector whose tail is pre-sized for `capacity` appends, so
    /// a hot loop that pushes into it performs no steady-state
    /// reallocations between seals.
    pub fn with_capacity(capacity: usize) -> Self {
        CowVec {
            chunks: Vec::new(),
            prefix_len: 0,
            tail: Vec::with_capacity(capacity),
        }
    }

    /// Builds a vector from existing elements (all in the tail).
    pub fn from_vec(items: Vec<T>) -> Self {
        CowVec {
            chunks: Vec::new(),
            prefix_len: 0,
            tail: items,
        }
    }

    /// Total number of elements (sealed prefix + tail).
    pub fn len(&self) -> usize {
        self.prefix_len + self.tail.len()
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an element to the tail. Amortised O(1); never touches the
    /// sealed prefix.
    pub fn push(&mut self, item: T) {
        self.tail.push(item);
    }

    /// The element at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index < self.prefix_len {
            let mut offset = index;
            for chunk in &self.chunks {
                if offset < chunk.len() {
                    return Some(&chunk[offset]);
                }
                offset -= chunk.len();
            }
            unreachable!("prefix_len covers every chunk")
        } else {
            self.tail.get(index - self.prefix_len)
        }
    }

    /// The last element, if any.
    pub fn last(&self) -> Option<&T> {
        self.tail
            .last()
            .or_else(|| self.chunks.last().and_then(|c| c.last()))
    }

    /// Iterates over every element, prefix first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
    }

    /// Seals the tail into a shared immutable chunk. After this, clones
    /// share the entire history structurally. O(tail length) — the tail
    /// is *moved* into the chunk, the existing prefix is untouched.
    pub fn seal(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let capacity = self.tail.capacity();
        let sealed: Arc<[T]> = std::mem::take(&mut self.tail).into();
        self.prefix_len += sealed.len();
        self.chunks.push(sealed);
        // Keep the tail at its steady-state capacity so the hot append
        // loop does not re-grow from zero after every checkpoint.
        self.tail.reserve(capacity);
    }

    /// Seals the tail, then returns a structural-sharing clone: the
    /// snapshot primitive. O(chunks), independent of element count. The
    /// clone's tail carries the original's capacity, so a run resumed
    /// from the snapshot appends without regrowing from zero (the same
    /// steady-state-allocation property cold runs get from
    /// [`CowVec::with_capacity`]).
    pub fn sealed_clone(&mut self) -> CowVec<T> {
        self.seal();
        CowVec {
            chunks: self.chunks.clone(),
            prefix_len: self.prefix_len,
            tail: Vec::with_capacity(self.tail.capacity()),
        }
    }

    /// Copies every element into a plain `Vec` (prefix first).
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        out.extend(self.iter().cloned());
        out
    }

    /// Consumes the vector into a plain `Vec`, avoiding the copy when the
    /// history was never sealed (the common cold-run case).
    pub fn into_vec(self) -> Vec<T> {
        if self.chunks.is_empty() {
            self.tail
        } else {
            self.to_vec()
        }
    }

    /// Heap bytes exclusively owned by this instance (the unsealed tail).
    /// Sealed chunks are shared and accounted separately through
    /// [`CowVec::for_each_chunk`].
    pub fn exclusive_bytes(&self) -> usize {
        self.tail.len() * std::mem::size_of::<T>()
            + self.chunks.len() * std::mem::size_of::<Arc<[T]>>()
    }

    /// Visits every sealed chunk as `(identity, bytes)`. The identity is
    /// stable for the chunk's lifetime and equal across clones sharing
    /// it, so a store can charge each distinct chunk's bytes exactly once
    /// however many snapshots reference it.
    pub fn for_each_chunk(&self, f: &mut dyn FnMut(usize, usize)) {
        for chunk in &self.chunks {
            f(
                // avis-lint: allow(d2, reason = "chunk identity for memory-budget dedup only; never feeds replay, hashing or ordering")
                Arc::as_ptr(chunk) as *const T as usize,
                chunk.len() * std::mem::size_of::<T>(),
            );
        }
    }

    /// The delta from `prev` to `self` for a delta-encoded snapshot
    /// chain. When `prev`'s chunk list is a shared prefix of `self`'s
    /// (the normal case along one run: both are sealed captures and the
    /// later one only appended), the delta stores just the *new* chunk
    /// handles — without it, every cut of an `n`-cut chain would own its
    /// own `O(n)` chunk-handle list, `O(n²)` across the chain. Falls back
    /// to a full structural clone when the histories diverged.
    pub fn delta_from(&self, prev: &CowVec<T>) -> CowDelta<T> {
        let shares_prefix = self.tail.is_empty()
            && prev.tail.is_empty()
            && self.chunks.len() >= prev.chunks.len()
            && self
                .chunks
                .iter()
                .zip(prev.chunks.iter())
                .all(|(a, b)| Arc::ptr_eq(a, b));
        if shares_prefix {
            CowDelta::Suffix(self.chunks[prev.chunks.len()..].to_vec())
        } else {
            CowDelta::Full(self.clone())
        }
    }

    /// Re-materialises the vector `delta` was diffed *to*, using `prev`
    /// as the vector it was diffed *from*. Exact inverse of
    /// [`CowVec::delta_from`] over the same `prev`.
    pub fn apply_delta(prev: &CowVec<T>, delta: &CowDelta<T>) -> CowVec<T> {
        match delta {
            CowDelta::Full(full) => full.clone(),
            CowDelta::Suffix(suffix) => {
                let mut chunks = prev.chunks.clone();
                let mut prefix_len = prev.prefix_len + prev.tail.len();
                debug_assert!(prev.tail.is_empty(), "delta bases are sealed");
                for chunk in suffix {
                    prefix_len += chunk.len();
                    chunks.push(Arc::clone(chunk));
                }
                CowVec {
                    chunks,
                    prefix_len,
                    tail: Vec::new(),
                }
            }
        }
    }

    /// Serialises the vector for the persistent store. Each sealed chunk
    /// is encoded (element count + elements via `enc`) into its own blob
    /// and handed to `sink`, which content-addresses it; only the chunk
    /// hashes are written inline, so histories shared across snapshots
    /// dedup to one stored blob per distinct chunk. The unsealed tail (if
    /// any) is encoded inline.
    pub fn encode_chunked(
        &self,
        w: &mut ByteWriter,
        sink: &mut dyn ChunkSink,
        enc: &mut dyn FnMut(&mut ByteWriter, &T),
    ) {
        w.usize(self.chunks.len());
        for chunk in &self.chunks {
            let mut cw = ByteWriter::with_capacity(16 + chunk.len() * 8);
            cw.usize(chunk.len());
            for item in chunk.iter() {
                enc(&mut cw, item);
            }
            w.u64(sink.put_chunk(cw.into_bytes()));
        }
        w.usize(self.tail.len());
        for item in &self.tail {
            enc(w, item);
        }
    }

    /// Restores a vector serialised by [`CowVec::encode_chunked`],
    /// fetching chunk blobs from `source`. A missing or malformed chunk
    /// blob is a decode error (the store falls back to a cold start).
    pub fn decode_chunked(
        r: &mut ByteReader<'_>,
        source: &mut dyn ChunkSource,
        dec: &mut dyn FnMut(&mut ByteReader<'_>) -> CodecResult<T>,
    ) -> CodecResult<CowVec<T>> {
        let n_chunks = r.usize()?;
        // Each chunk reference is 8 bytes inline; guard the count the same
        // way ByteReader::seq guards element counts.
        if n_chunks.checked_mul(8).is_none_or(|b| b > r.remaining()) {
            return Err(CodecError::Malformed("implausible chunk count"));
        }
        let mut chunks: Vec<Arc<[T]>> = Vec::with_capacity(n_chunks);
        let mut prefix_len = 0usize;
        for _ in 0..n_chunks {
            let hash = r.u64()?;
            let bytes = source
                .get_chunk(hash)
                .ok_or(CodecError::Malformed("missing chunk blob"))?;
            if fnv1a(&bytes) != hash {
                return Err(CodecError::Malformed("chunk content hash mismatch"));
            }
            let mut cr = ByteReader::new(&bytes);
            let elems = cr.seq(&mut *dec)?;
            cr.finish()?;
            prefix_len += elems.len();
            chunks.push(elems.into());
        }
        let tail = r.seq(&mut *dec)?;
        Ok(CowVec {
            chunks,
            prefix_len,
            tail,
        })
    }
}

/// The chunk-list delta of a [`CowVec`] relative to an earlier sealed
/// capture of the same history (see [`CowVec::delta_from`]).
pub enum CowDelta<T> {
    /// `prev` is a shared prefix; only the newly sealed chunk handles are
    /// stored. The chunks *contents* are `Arc`-shared as always.
    Suffix(Vec<Arc<[T]>>),
    /// The histories diverged; a full structural clone is stored.
    Full(CowVec<T>),
}

impl<T: Clone> Clone for CowDelta<T> {
    fn clone(&self) -> Self {
        match self {
            CowDelta::Suffix(suffix) => CowDelta::Suffix(suffix.clone()),
            CowDelta::Full(full) => CowDelta::Full(full.clone()),
        }
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for CowDelta<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CowDelta::Suffix(suffix) => f
                .debug_tuple("Suffix")
                .field(&suffix.iter().map(|c| c.len()).sum::<usize>())
                .finish(),
            CowDelta::Full(full) => f.debug_tuple("Full").field(full).finish(),
        }
    }
}

impl<T: Clone> CowDelta<T> {
    /// Heap bytes exclusively owned by the delta (chunk handles; the
    /// chunk contents are shared and accounted through
    /// [`CowDelta::for_each_chunk`]).
    pub fn exclusive_bytes(&self) -> usize {
        match self {
            CowDelta::Suffix(suffix) => suffix.len() * std::mem::size_of::<Arc<[T]>>(),
            CowDelta::Full(full) => full.exclusive_bytes(),
        }
    }

    /// Visits the `Arc`-shared chunks the delta itself holds handles to
    /// (the suffix chunks, or every chunk of a full fallback). The base
    /// capture's prefix chunks are *not* visited for a suffix delta: a
    /// delta entry can only exist while its chain parent is resident
    /// (chain-aware eviction), and the parent already charges them.
    pub fn for_each_chunk(&self, f: &mut dyn FnMut(usize, usize)) {
        match self {
            CowDelta::Suffix(suffix) => {
                for chunk in suffix {
                    f(
                        // avis-lint: allow(d2, reason = "chunk identity for memory-budget dedup only; never feeds replay, hashing or ordering")
                        Arc::as_ptr(chunk) as *const T as usize,
                        chunk.len() * std::mem::size_of::<T>(),
                    );
                }
            }
            CowDelta::Full(full) => full.for_each_chunk(f),
        }
    }

    /// Serialises the delta for the persistent store (chunk contents go
    /// to `sink`; see [`CowVec::encode_chunked`]).
    pub fn encode_chunked(
        &self,
        w: &mut ByteWriter,
        sink: &mut dyn ChunkSink,
        enc: &mut dyn FnMut(&mut ByteWriter, &T),
    ) {
        match self {
            CowDelta::Suffix(suffix) => {
                w.u8(0);
                w.usize(suffix.len());
                for chunk in suffix {
                    let mut cw = ByteWriter::with_capacity(16 + chunk.len() * 8);
                    cw.usize(chunk.len());
                    for item in chunk.iter() {
                        enc(&mut cw, item);
                    }
                    w.u64(sink.put_chunk(cw.into_bytes()));
                }
            }
            CowDelta::Full(full) => {
                w.u8(1);
                full.encode_chunked(w, sink, enc);
            }
        }
    }

    /// Restores a delta serialised by [`CowDelta::encode_chunked`].
    pub fn decode_chunked(
        r: &mut ByteReader<'_>,
        source: &mut dyn ChunkSource,
        dec: &mut dyn FnMut(&mut ByteReader<'_>) -> CodecResult<T>,
    ) -> CodecResult<CowDelta<T>> {
        match r.u8()? {
            0 => {
                let n_chunks = r.usize()?;
                if n_chunks.checked_mul(8).is_none_or(|b| b > r.remaining()) {
                    return Err(CodecError::Malformed("implausible chunk count"));
                }
                let mut suffix: Vec<Arc<[T]>> = Vec::with_capacity(n_chunks);
                for _ in 0..n_chunks {
                    let hash = r.u64()?;
                    let bytes = source
                        .get_chunk(hash)
                        .ok_or(CodecError::Malformed("missing chunk blob"))?;
                    if fnv1a(&bytes) != hash {
                        return Err(CodecError::Malformed("chunk content hash mismatch"));
                    }
                    let mut cr = ByteReader::new(&bytes);
                    let elems = cr.seq(&mut *dec)?;
                    cr.finish()?;
                    suffix.push(elems.into());
                }
                Ok(CowDelta::Suffix(suffix))
            }
            1 => Ok(CowDelta::Full(CowVec::decode_chunked(r, source, dec)?)),
            _ => Err(CodecError::Malformed("cow delta tag")),
        }
    }
}

impl<T> Default for CowVec<T> {
    fn default() -> Self {
        CowVec {
            chunks: Vec::new(),
            prefix_len: 0,
            tail: Vec::new(),
        }
    }
}

impl<T: Clone> Index<usize> for CowVec<T> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        self.get(index)
            .unwrap_or_else(|| panic!("CowVec index {index} out of bounds (len {})", self.len()))
    }
}

impl<T: Clone> FromIterator<T> for CowVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        CowVec::from_vec(iter.into_iter().collect())
    }
}

impl<T: Clone + PartialEq> PartialEq for CowVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for CowVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_get_index_iter() {
        let mut v = CowVec::new();
        assert!(v.is_empty());
        for i in 0..10 {
            v.push(i);
        }
        v.seal();
        for i in 10..25 {
            v.push(i);
        }
        assert_eq!(v.len(), 25);
        assert!(!v.is_empty());
        assert_eq!(v.get(0), Some(&0));
        assert_eq!(v.get(9), Some(&9));
        assert_eq!(v.get(10), Some(&10));
        assert_eq!(v[24], 24);
        assert_eq!(v.get(25), None);
        assert_eq!(v.last(), Some(&24));
        let collected: Vec<i32> = v.iter().copied().collect();
        assert_eq!(collected, (0..25).collect::<Vec<_>>());
        assert_eq!(v.to_vec(), collected);
    }

    #[test]
    fn sealed_clone_is_structural_sharing_and_aliasing_safe() {
        let mut original = CowVec::with_capacity(8);
        for i in 0..100 {
            original.push(i);
        }
        let snapshot = original.sealed_clone();
        assert_eq!(snapshot.len(), 100);
        // The fork keeps appending and sealing; the snapshot must never
        // observe any of it.
        for i in 100..200 {
            original.push(i * 10);
            if i % 17 == 0 {
                original.seal();
            }
        }
        assert_eq!(snapshot.len(), 100);
        assert_eq!(snapshot.to_vec(), (0..100).collect::<Vec<_>>());
        assert_eq!(original.len(), 200);
        // And the chunks really are shared: identities overlap.
        let mut snap_ids = Vec::new();
        snapshot.for_each_chunk(&mut |id, _| snap_ids.push(id));
        let mut orig_ids = Vec::new();
        original.for_each_chunk(&mut |id, _| orig_ids.push(id));
        assert!(snap_ids.iter().all(|id| orig_ids.contains(id)));
        assert!(orig_ids.len() > snap_ids.len());
    }

    #[test]
    fn seal_of_empty_tail_is_a_no_op() {
        let mut v: CowVec<u8> = CowVec::new();
        v.seal();
        v.seal();
        assert!(v.is_empty());
        v.push(1);
        v.seal();
        let chunks_before = v.chunks.len();
        v.seal();
        assert_eq!(v.chunks.len(), chunks_before);
    }

    #[test]
    fn into_vec_avoids_copy_when_unsealed() {
        let v = CowVec::from_vec(vec![1, 2, 3]);
        assert_eq!(v.into_vec(), vec![1, 2, 3]);
        let mut sealed = CowVec::from_vec(vec![1, 2, 3]);
        sealed.seal();
        sealed.push(4);
        assert_eq!(sealed.into_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn exclusive_bytes_counts_only_the_tail_elements() {
        let mut v = CowVec::new();
        for i in 0..8u64 {
            v.push(i);
        }
        let unsealed = v.exclusive_bytes();
        assert!(unsealed >= 8 * std::mem::size_of::<u64>());
        v.seal();
        assert!(v.exclusive_bytes() < unsealed);
        let mut bytes = 0;
        v.for_each_chunk(&mut |_, b| bytes += b);
        assert_eq!(bytes, 8 * std::mem::size_of::<u64>());
    }

    #[test]
    fn delta_from_stores_only_the_suffix_and_applies_exactly() {
        let mut v = CowVec::from_vec((0..20).collect::<Vec<i32>>());
        v.seal();
        let base = v.sealed_clone();
        for i in 20..35 {
            v.push(i);
        }
        v.seal();
        for i in 35..40 {
            v.push(i);
        }
        let cut = v.sealed_clone();
        let delta = cut.delta_from(&base);
        // Two new chunks' handles, nothing else.
        assert!(matches!(&delta, CowDelta::Suffix(s) if s.len() == 2));
        assert!(delta.exclusive_bytes() < base.exclusive_bytes() + cut.exclusive_bytes());
        let rebuilt = CowVec::apply_delta(&base, &delta);
        assert_eq!(rebuilt, cut);
        assert_eq!(rebuilt.to_vec(), (0..40).collect::<Vec<i32>>());
        // The suffix chunks are charged by the delta; the shared prefix
        // chunk is not (the chain parent charges it).
        let mut delta_ids = Vec::new();
        delta.for_each_chunk(&mut |id, _| delta_ids.push(id));
        let mut base_ids = Vec::new();
        base.for_each_chunk(&mut |id, _| base_ids.push(id));
        assert!(delta_ids.iter().all(|id| !base_ids.contains(id)));

        // Divergent histories fall back to a full clone.
        let mut other = CowVec::from_vec((0..20).collect::<Vec<i32>>());
        other.seal();
        let foreign = other.sealed_clone();
        let fallback = cut.delta_from(&foreign);
        assert!(matches!(fallback, CowDelta::Full(_)));
        assert_eq!(CowVec::apply_delta(&foreign, &fallback), cut);
    }

    #[test]
    fn chunked_encode_round_trips_and_dedups_shared_history() {
        use crate::codec::{ByteReader, ByteWriter};

        let mut v = CowVec::from_vec((0..30u64).collect::<Vec<_>>());
        v.seal();
        let base = v.sealed_clone();
        for i in 30..50 {
            v.push(i);
        }
        let cut = v.sealed_clone();

        let mut store = MemoryChunkStore::new();
        let enc = |w: &mut ByteWriter, t: &u64| w.u64(*t);
        let dec = |r: &mut ByteReader<'_>| r.u64();

        let mut w = ByteWriter::new();
        base.encode_chunked(&mut w, &mut store, &mut { enc });
        let base_bytes = w.into_bytes();
        let mut w = ByteWriter::new();
        cut.encode_chunked(&mut w, &mut store, &mut { enc });
        let cut_bytes = w.into_bytes();

        // `cut` shares its first chunk with `base`: one dedup hit.
        assert_eq!(store.dedup_hits, 1);
        assert_eq!(store.len(), 2);

        let rebuilt_base =
            CowVec::decode_chunked(&mut ByteReader::new(&base_bytes), &mut store, &mut { dec })
                .unwrap();
        let rebuilt_cut =
            CowVec::decode_chunked(&mut ByteReader::new(&cut_bytes), &mut store, &mut { dec })
                .unwrap();
        assert_eq!(rebuilt_base, base);
        assert_eq!(rebuilt_cut, cut);

        // Deltas round-trip too, and their suffix chunks dedup against the
        // full encodings already stored.
        let delta = cut.delta_from(&base);
        let mut w = ByteWriter::new();
        delta.encode_chunked(&mut w, &mut store, &mut { enc });
        let delta_bytes = w.into_bytes();
        assert_eq!(store.dedup_hits, 2);
        let rebuilt_delta =
            CowDelta::decode_chunked(&mut ByteReader::new(&delta_bytes), &mut store, &mut { dec })
                .unwrap();
        assert_eq!(CowVec::apply_delta(&rebuilt_base, &rebuilt_delta), cut);
    }

    #[test]
    fn chunked_decode_rejects_corrupt_or_missing_chunks() {
        use crate::codec::{ByteReader, ByteWriter};

        let mut v = CowVec::from_vec(vec![1u64, 2, 3]);
        v.seal();
        let mut store = MemoryChunkStore::new();
        let mut w = ByteWriter::new();
        v.encode_chunked(&mut w, &mut store, &mut |w, t| w.u64(*t));
        let bytes = w.into_bytes();

        // Unsealed tail round-trips inline even with an empty store.
        let hash = {
            let mut ids = Vec::new();
            store.chunks.keys().for_each(|k| ids.push(*k));
            ids[0]
        };
        assert!(store.corrupt_chunk(hash));
        let err =
            CowVec::<u64>::decode_chunked(&mut ByteReader::new(&bytes), &mut store, &mut |r| {
                r.u64()
            });
        assert!(err.is_err());

        let mut empty = MemoryChunkStore::new();
        let err =
            CowVec::<u64>::decode_chunked(&mut ByteReader::new(&bytes), &mut empty, &mut |r| {
                r.u64()
            });
        assert!(err.is_err());
    }

    #[test]
    fn equality_is_elementwise_across_chunk_layouts() {
        let mut a = CowVec::from_vec(vec![1, 2, 3, 4]);
        a.seal();
        a.push(5);
        let b = CowVec::from_vec(vec![1, 2, 3, 4, 5]);
        assert_eq!(a, b);
        let c = CowVec::from_vec(vec![1, 2, 3, 4, 6]);
        assert_ne!(a, c);
    }
}
