//! The simulated physical environment: ground plane, obstacles, wind and
//! geofenced regions.
//!
//! The paper's default environment has "no hostile weather or obstacles";
//! that is [`Environment::default`]. Specific experiments (e.g. the fence
//! workload) add keep-out regions, and ablation tests can add wind or
//! obstacles.

use crate::math::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned box obstacle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxObstacle {
    /// Minimum corner (m).
    pub min: Vec3,
    /// Maximum corner (m).
    pub max: Vec3,
}

impl BoxObstacle {
    /// Creates an obstacle from two opposite corners (order-insensitive).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        BoxObstacle {
            min: Vec3::new(a.x.min(b.x), a.y.min(b.y), a.z.min(b.z)),
            max: Vec3::new(a.x.max(b.x), a.y.max(b.y), a.z.max(b.z)),
        }
    }

    /// Returns `true` if a sphere of `radius` centred at `p` intersects the box.
    pub fn intersects_sphere(&self, p: Vec3, radius: f64) -> bool {
        let cx = p.x.clamp(self.min.x, self.max.x);
        let cy = p.y.clamp(self.min.y, self.max.y);
        let cz = p.z.clamp(self.min.z, self.max.z);
        Vec3::new(cx, cy, cz).distance(p) <= radius
    }
}

/// A geofenced region in the horizontal plane.
///
/// Fences are used both to keep the vehicle *inside* an allowed area and to
/// keep it *out of* restricted airspace (the paper's second workload).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FenceRegion {
    /// A circular region centred at `center` with the given radius (m).
    Circle {
        /// Centre of the circle (only x/y are used).
        center: Vec3,
        /// Radius in metres.
        radius: f64,
    },
    /// An axis-aligned rectangular region in the horizontal plane.
    Rectangle {
        /// Minimum x/y corner.
        min_x: f64,
        /// Minimum y.
        min_y: f64,
        /// Maximum x.
        max_x: f64,
        /// Maximum y.
        max_y: f64,
    },
}

impl FenceRegion {
    /// Returns `true` if the horizontal projection of `p` lies inside the region.
    pub fn contains(&self, p: Vec3) -> bool {
        match *self {
            FenceRegion::Circle { center, radius } => p.horizontal_distance(center) <= radius,
            FenceRegion::Rectangle {
                min_x,
                min_y,
                max_x,
                max_y,
            } => p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y,
        }
    }
}

/// A geofence with a policy: either the vehicle must stay inside the region
/// (containment) or must stay out of it (exclusion / restricted airspace).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fence {
    /// The fenced region.
    pub region: FenceRegion,
    /// If `true`, the region is a keep-out zone; otherwise it is a
    /// containment boundary.
    pub exclusion: bool,
}

impl Fence {
    /// Creates a keep-out (restricted airspace) fence.
    pub fn exclusion(region: FenceRegion) -> Self {
        Fence {
            region,
            exclusion: true,
        }
    }

    /// Creates a containment fence.
    pub fn containment(region: FenceRegion) -> Self {
        Fence {
            region,
            exclusion: false,
        }
    }

    /// Returns `true` if position `p` violates this fence.
    pub fn violated_by(&self, p: Vec3) -> bool {
        if self.exclusion {
            self.region.contains(p)
        } else {
            !self.region.contains(p)
        }
    }
}

/// A simple wind model: a constant mean wind plus a sinusoidal gust.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wind {
    /// Mean wind velocity in the world frame (m/s).
    pub mean: Vec3,
    /// Gust amplitude (m/s), applied along the mean direction.
    pub gust_amplitude: f64,
    /// Gust period (s).
    pub gust_period: f64,
}

impl Default for Wind {
    fn default() -> Self {
        Wind {
            mean: Vec3::ZERO,
            gust_amplitude: 0.0,
            gust_period: 10.0,
        }
    }
}

impl Wind {
    /// Calm conditions (the paper's default environment).
    pub fn calm() -> Self {
        Wind::default()
    }

    /// Steady wind with the given velocity and no gusts.
    pub fn steady(mean: Vec3) -> Self {
        Wind {
            mean,
            ..Default::default()
        }
    }

    /// Evaluates the wind velocity at simulation time `t` seconds.
    pub fn at(&self, t: f64) -> Vec3 {
        if self.gust_amplitude == 0.0 {
            return self.mean;
        }
        let dir = self.mean.normalized().unwrap_or(Vec3::new(1.0, 0.0, 0.0));
        let phase = 2.0 * std::f64::consts::PI * t / self.gust_period.max(1e-3);
        self.mean + dir * (self.gust_amplitude * phase.sin())
    }
}

/// What the vehicle collided with, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CollisionKind {
    /// Impact with the ground plane above the crash-speed threshold.
    Ground,
    /// Intersection with a static obstacle (index into the obstacle list).
    Obstacle(usize),
}

/// A detected physical collision.
///
/// The paper's safety invariant flags a collision when the vehicle
/// "rapidly (de)accelerates but has the same position as another simulated
/// object, e.g. the ground"; we reproduce that as an impact-speed threshold
/// at the contact point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Collision {
    /// What was hit.
    pub kind: CollisionKind,
    /// Speed at impact (m/s).
    pub impact_speed: f64,
    /// World position at impact.
    pub position: Vec3,
}

/// The simulated world: ground plane, obstacles, fences and wind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    obstacles: Vec<BoxObstacle>,
    fences: Vec<Fence>,
    wind: Wind,
    /// Vertical impact speed (m/s) above which ground contact counts as a crash.
    crash_speed_threshold: f64,
    /// Radius of the sphere used to approximate the vehicle body (m).
    vehicle_radius: f64,
    /// Home (launch) position.
    home: Vec3,
}

impl Default for Environment {
    fn default() -> Self {
        Environment {
            obstacles: Vec::new(),
            fences: Vec::new(),
            wind: Wind::calm(),
            crash_speed_threshold: 2.0,
            vehicle_radius: 0.3,
            home: Vec3::ZERO,
        }
    }
}

impl Environment {
    /// The paper's default test environment: flat ground, no obstacles, no
    /// hostile weather.
    pub fn open_field() -> Self {
        Environment::default()
    }

    /// Adds a box obstacle and returns `self` for chaining.
    pub fn with_obstacle(mut self, obstacle: BoxObstacle) -> Self {
        self.obstacles.push(obstacle);
        self
    }

    /// Adds a fence and returns `self` for chaining.
    pub fn with_fence(mut self, fence: Fence) -> Self {
        self.fences.push(fence);
        self
    }

    /// Sets the wind model and returns `self` for chaining.
    pub fn with_wind(mut self, wind: Wind) -> Self {
        self.wind = wind;
        self
    }

    /// Sets the home (launch) position and returns `self` for chaining.
    pub fn with_home(mut self, home: Vec3) -> Self {
        self.home = home;
        self
    }

    /// The configured obstacles.
    pub fn obstacles(&self) -> &[BoxObstacle] {
        &self.obstacles
    }

    /// The configured fences.
    pub fn fences(&self) -> &[Fence] {
        &self.fences
    }

    /// The wind model.
    pub fn wind(&self) -> &Wind {
        &self.wind
    }

    /// The home (launch) position.
    pub fn home(&self) -> Vec3 {
        self.home
    }

    /// Impact speed above which ground contact is a crash (m/s).
    pub fn crash_speed_threshold(&self) -> f64 {
        self.crash_speed_threshold
    }

    /// Overrides the crash-speed threshold.
    pub fn set_crash_speed_threshold(&mut self, threshold: f64) {
        self.crash_speed_threshold = threshold.max(0.0);
    }

    /// Checks for a collision given the position and velocity at the moment
    /// the vehicle (re)contacts the ground or intersects an obstacle.
    ///
    /// `was_airborne` should be `true` if the vehicle was off the ground on
    /// the previous step; a vehicle that is already resting on the ground is
    /// not repeatedly reported as colliding.
    pub fn check_collision(
        &self,
        position: Vec3,
        velocity: Vec3,
        was_airborne: bool,
    ) -> Option<Collision> {
        // Obstacle intersection is a collision regardless of speed.
        for (i, obs) in self.obstacles.iter().enumerate() {
            if obs.intersects_sphere(position, self.vehicle_radius) {
                return Some(Collision {
                    kind: CollisionKind::Obstacle(i),
                    impact_speed: velocity.norm(),
                    position,
                });
            }
        }
        // Ground impact: only when transitioning from airborne to ground
        // contact faster than the crash threshold.
        if was_airborne && position.z <= self.vehicle_radius * 0.1 {
            let impact_speed = velocity.norm();
            if -velocity.z >= self.crash_speed_threshold {
                return Some(Collision {
                    kind: CollisionKind::Ground,
                    impact_speed,
                    position,
                });
            }
        }
        None
    }

    /// Returns the indices of fences violated at `position`.
    pub fn violated_fences(&self, position: Vec3) -> Vec<usize> {
        let mut indices = Vec::new();
        self.violated_fences_into(position, &mut indices);
        indices
    }

    /// Appends the indices of fences violated at `position` to `indices`
    /// (which the caller clears between steps), avoiding the per-step
    /// allocation of [`Environment::violated_fences`].
    pub fn violated_fences_into(&self, position: Vec3, indices: &mut Vec<usize>) {
        for (i, fence) in self.fences.iter().enumerate() {
            if fence.violated_by(position) {
                indices.push(i);
            }
        }
    }
}

impl Collision {
    /// Serialises the collision record for the persistent store.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        match self.kind {
            CollisionKind::Ground => w.u8(0),
            CollisionKind::Obstacle(index) => {
                w.u8(1);
                w.usize(index);
            }
        }
        w.f64(self.impact_speed);
        self.position.encode(w);
    }

    /// Restores a collision serialised by [`Collision::encode`].
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> crate::codec::CodecResult<Collision> {
        let kind = match r.u8()? {
            0 => CollisionKind::Ground,
            1 => CollisionKind::Obstacle(r.usize()?),
            _ => return Err(crate::codec::CodecError::Malformed("collision kind tag")),
        };
        Ok(Collision {
            kind,
            impact_speed: r.f64()?,
            position: Vec3::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_obstacle_sphere_intersection() {
        let obs = BoxObstacle::new(Vec3::new(5.0, 5.0, 0.0), Vec3::new(6.0, 6.0, 10.0));
        assert!(obs.intersects_sphere(Vec3::new(5.5, 5.5, 5.0), 0.3));
        assert!(obs.intersects_sphere(Vec3::new(4.8, 5.5, 5.0), 0.3));
        assert!(!obs.intersects_sphere(Vec3::new(4.0, 5.5, 5.0), 0.3));
        // Corner ordering does not matter.
        let obs2 = BoxObstacle::new(Vec3::new(6.0, 6.0, 10.0), Vec3::new(5.0, 5.0, 0.0));
        assert_eq!(obs, obs2);
    }

    #[test]
    fn fence_circle_contains() {
        let region = FenceRegion::Circle {
            center: Vec3::new(10.0, 0.0, 0.0),
            radius: 5.0,
        };
        assert!(region.contains(Vec3::new(12.0, 0.0, 50.0)));
        assert!(!region.contains(Vec3::new(16.0, 0.0, 0.0)));
    }

    #[test]
    fn fence_rectangle_contains() {
        let region = FenceRegion::Rectangle {
            min_x: 0.0,
            min_y: 0.0,
            max_x: 10.0,
            max_y: 20.0,
        };
        assert!(region.contains(Vec3::new(5.0, 10.0, 3.0)));
        assert!(!region.contains(Vec3::new(-1.0, 10.0, 3.0)));
        assert!(!region.contains(Vec3::new(5.0, 21.0, 3.0)));
    }

    #[test]
    fn exclusion_vs_containment_fences() {
        let region = FenceRegion::Circle {
            center: Vec3::ZERO,
            radius: 10.0,
        };
        let keep_out = Fence::exclusion(region);
        let keep_in = Fence::containment(region);
        let inside = Vec3::new(1.0, 1.0, 5.0);
        let outside = Vec3::new(50.0, 0.0, 5.0);
        assert!(keep_out.violated_by(inside));
        assert!(!keep_out.violated_by(outside));
        assert!(!keep_in.violated_by(inside));
        assert!(keep_in.violated_by(outside));
    }

    #[test]
    fn calm_wind_is_zero() {
        let w = Wind::calm();
        assert_eq!(w.at(0.0), Vec3::ZERO);
        assert_eq!(w.at(12.3), Vec3::ZERO);
    }

    #[test]
    fn gusty_wind_oscillates_about_mean() {
        let w = Wind {
            mean: Vec3::new(4.0, 0.0, 0.0),
            gust_amplitude: 2.0,
            gust_period: 8.0,
        };
        let quarter = w.at(2.0); // sin(pi/2) = 1 -> mean + amplitude
        assert!((quarter.x - 6.0).abs() < 1e-9);
        let half = w.at(4.0); // sin(pi) = 0
        assert!((half.x - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ground_collision_requires_airborne_and_speed() {
        let env = Environment::open_field();
        let fast_down = Vec3::new(0.0, 0.0, -5.0);
        let slow_down = Vec3::new(0.0, 0.0, -0.5);
        let ground = Vec3::ZERO;
        assert!(env.check_collision(ground, fast_down, true).is_some());
        assert!(env.check_collision(ground, slow_down, true).is_none());
        // Already on ground: no new collision even at (stale) high speed.
        assert!(env.check_collision(ground, fast_down, false).is_none());
        // In the air: no ground collision.
        assert!(env
            .check_collision(Vec3::new(0.0, 0.0, 10.0), fast_down, true)
            .is_none());
    }

    #[test]
    fn obstacle_collision_detected() {
        let env = Environment::open_field().with_obstacle(BoxObstacle::new(
            Vec3::new(5.0, -1.0, 0.0),
            Vec3::new(6.0, 1.0, 30.0),
        ));
        let c = env
            .check_collision(Vec3::new(5.5, 0.0, 10.0), Vec3::new(3.0, 0.0, 0.0), true)
            .expect("collision");
        assert_eq!(c.kind, CollisionKind::Obstacle(0));
        assert!((c.impact_speed - 3.0).abs() < 1e-9);
    }

    #[test]
    fn violated_fences_lists_indices() {
        let env = Environment::open_field()
            .with_fence(Fence::exclusion(FenceRegion::Circle {
                center: Vec3::new(10.0, 10.0, 0.0),
                radius: 3.0,
            }))
            .with_fence(Fence::containment(FenceRegion::Circle {
                center: Vec3::ZERO,
                radius: 100.0,
            }));
        assert!(env.violated_fences(Vec3::new(0.0, 0.0, 5.0)).is_empty());
        assert_eq!(env.violated_fences(Vec3::new(10.0, 10.0, 5.0)), vec![0]);
        assert_eq!(env.violated_fences(Vec3::new(200.0, 0.0, 5.0)), vec![1]);
    }

    #[test]
    fn builder_chain_accumulates() {
        let env = Environment::open_field()
            .with_obstacle(BoxObstacle::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0)))
            .with_obstacle(BoxObstacle::new(
                Vec3::new(2.0, 2.0, 0.0),
                Vec3::new(3.0, 3.0, 1.0),
            ))
            .with_wind(Wind::steady(Vec3::new(1.0, 0.0, 0.0)))
            .with_home(Vec3::new(1.0, 2.0, 0.0));
        assert_eq!(env.obstacles().len(), 2);
        assert_eq!(env.wind().mean, Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(env.home(), Vec3::new(1.0, 2.0, 0.0));
    }
}
