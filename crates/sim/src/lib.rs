//! # avis-sim
//!
//! Quadcopter physics, environment and sensor simulator for the Avis
//! reproduction (DSN 2021, "Avis: In-Situ Model Checking for Unmanned
//! Aerial Vehicles").
//!
//! This crate is the substitute for the Gazebo/SITL simulation stack the
//! paper evaluates against. It provides everything the checker and the
//! firmware substrate need from a physics backend:
//!
//! - a rigid-body quadcopter model with motor dynamics ([`vehicle`]),
//! - an environment with ground, obstacles, geofences and wind
//!   ([`environment`]),
//! - a redundant sensor suite with realistic noise ([`sensors`]),
//! - a deterministic, lock-step [`simulator::Simulator`] advancing in
//!   fixed 1 ms time-steps,
//! - deterministic randomness ([`rng`]) so fault-injection scenarios can
//!   be replayed exactly.
//!
//! # Example
//!
//! ```
//! use avis_sim::simulator::Simulator;
//! use avis_sim::vehicle::MotorCommands;
//!
//! let mut sim = Simulator::with_defaults();
//! // Climb at 80% throttle for two simulated seconds.
//! for _ in 0..2000 {
//!     sim.step(&MotorCommands::uniform(0.8));
//! }
//! assert!(sim.physical_state().position.z > 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod codec;
pub mod cow;
pub mod environment;
pub mod math;
pub mod rng;
pub mod sensors;
pub mod simulator;
pub mod vehicle;

pub use batch::LaneBatch;
pub use codec::{ByteReader, ByteWriter, CodecError, CodecResult};
pub use cow::{ChunkSink, ChunkSource, CowDelta, CowVec};
pub use environment::{
    BoxObstacle, Collision, CollisionKind, Environment, Fence, FenceRegion, Wind,
};
pub use math::{Quat, Vec3};
pub use rng::SimRng;
pub use sensors::{
    SensorDynamics, SensorInstance, SensorKind, SensorNoise, SensorReading, SensorRole,
    SensorSuite, SensorSuiteConfig, SensorValue,
};
pub use simulator::{
    PackedStepOutput, PhysicalState, SimConfig, SimDelta, SimSnapshot, Simulator, StepOutput,
};
pub use vehicle::{
    MotorCommands, QuadDynamics, Quadcopter, RigidBodyState, VehicleParams, GRAVITY, MOTOR_COUNT,
};
