//! Small, dependency-free 3-D math primitives used by the simulator.
//!
//! The simulator uses an East-North-Up (ENU) world frame: `x` east,
//! `y` north, `z` up. Attitude is represented by unit [`Quat`]ernions
//! rotating vectors from the body frame into the world frame.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component vector of `f64`.
///
/// # Examples
///
/// ```
/// use avis_sim::math::Vec3;
/// let v = Vec3::new(3.0, 4.0, 0.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// East / body-forward component.
    pub x: f64,
    /// North / body-right component.
    pub y: f64,
    /// Up component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// World-frame unit "up" vector.
    pub const UP: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Returns the Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns the squared Euclidean norm (avoids the square root).
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean distance to another point.
    ///
    /// This is the `de` distance used by the invariant monitor in the paper.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Horizontal (x/y plane) distance to another point.
    pub fn horizontal_distance(self, other: Vec3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Returns a unit vector in the same direction, or `None` for a
    /// (near-)zero vector.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise clamp of the vector magnitude.
    pub fn clamp_norm(self, max: f64) -> Vec3 {
        debug_assert!(max >= 0.0);
        let n = self.norm();
        if n > max && n > 0.0 {
            self * (max / n)
        } else {
            self
        }
    }

    /// Returns `true` if every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A unit quaternion representing an attitude (body → world rotation).
///
/// # Examples
///
/// ```
/// use avis_sim::math::{Quat, Vec3};
/// // 90° yaw rotates body-x (east) into world-y (north).
/// let q = Quat::from_euler(0.0, 0.0, std::f64::consts::FRAC_PI_2);
/// let v = q.rotate(Vec3::new(1.0, 0.0, 0.0));
/// assert!((v.y - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part, x.
    pub x: f64,
    /// Vector part, y.
    pub y: f64,
    /// Vector part, z.
    pub z: f64,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from raw components (not normalized).
    pub const fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        Quat { w, x, y, z }
    }

    /// Builds a quaternion from roll (about x), pitch (about y) and yaw
    /// (about z) angles in radians, applied in Z-Y-X order.
    pub fn from_euler(roll: f64, pitch: f64, yaw: f64) -> Self {
        let (sr, cr) = (roll * 0.5).sin_cos();
        let (sp, cp) = (pitch * 0.5).sin_cos();
        let (sy, cy) = (yaw * 0.5).sin_cos();
        Quat {
            w: cr * cp * cy + sr * sp * sy,
            x: sr * cp * cy - cr * sp * sy,
            y: cr * sp * cy + sr * cp * sy,
            z: cr * cp * sy - sr * sp * cy,
        }
        .normalized()
    }

    /// Builds a rotation of `angle` radians about the given (unit) axis.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        let axis = axis.normalized().unwrap_or(Vec3::UP);
        let (s, c) = (angle * 0.5).sin_cos();
        Quat {
            w: c,
            x: axis.x * s,
            y: axis.y * s,
            z: axis.z * s,
        }
        .normalized()
    }

    /// Returns the (roll, pitch, yaw) Euler angles in radians.
    pub fn to_euler(self) -> (f64, f64, f64) {
        let q = self;
        // roll (x-axis rotation)
        let sinr_cosp = 2.0 * (q.w * q.x + q.y * q.z);
        let cosr_cosp = 1.0 - 2.0 * (q.x * q.x + q.y * q.y);
        let roll = sinr_cosp.atan2(cosr_cosp);
        // pitch (y-axis rotation)
        let sinp = 2.0 * (q.w * q.y - q.z * q.x);
        let pitch = if sinp.abs() >= 1.0 {
            std::f64::consts::FRAC_PI_2.copysign(sinp)
        } else {
            sinp.asin()
        };
        // yaw (z-axis rotation)
        let siny_cosp = 2.0 * (q.w * q.z + q.x * q.y);
        let cosy_cosp = 1.0 - 2.0 * (q.y * q.y + q.z * q.z);
        let yaw = siny_cosp.atan2(cosy_cosp);
        (roll, pitch, yaw)
    }

    /// Returns the yaw (heading) angle in radians.
    pub fn yaw(self) -> f64 {
        self.to_euler().2
    }

    /// Quaternion norm.
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns a normalized copy; falls back to identity for degenerate input.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n < 1e-12 || !n.is_finite() {
            Quat::IDENTITY
        } else {
            Quat {
                w: self.w / n,
                x: self.x / n,
                y: self.y / n,
                z: self.z / n,
            }
        }
    }

    /// Conjugate (inverse for unit quaternions).
    pub fn conjugate(self) -> Quat {
        Quat {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Rotates a vector from the body frame to the world frame.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = q * (0, v) * q^-1, expanded for efficiency.
        let u = Vec3::new(self.x, self.y, self.z);
        let s = self.w;
        u * (2.0 * u.dot(v)) + v * (s * s - u.dot(u)) + u.cross(v) * (2.0 * s)
    }

    /// Rotates a vector from the world frame into the body frame.
    pub fn rotate_inverse(self, v: Vec3) -> Vec3 {
        self.conjugate().rotate(v)
    }

    /// Integrates the quaternion by a body angular velocity `omega`
    /// (rad/s) over `dt` seconds, returning the new normalized attitude.
    pub fn integrate(self, omega: Vec3, dt: f64) -> Quat {
        let half_dt = 0.5 * dt;
        let dq = Quat {
            w: 0.0,
            x: omega.x,
            y: omega.y,
            z: omega.z,
        };
        let derivative = self * dq;
        Quat {
            w: self.w + derivative.w * half_dt,
            x: self.x + derivative.x * half_dt,
            y: self.y + derivative.y * half_dt,
            z: self.z + derivative.z * half_dt,
        }
        .normalized()
    }

    /// Returns `true` if every component is finite.
    pub fn is_finite(self) -> bool {
        self.w.is_finite() && self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

/// Hamilton product `self * rhs`.
impl Mul for Quat {
    type Output = Quat;

    fn mul(self, rhs: Quat) -> Quat {
        Quat {
            w: self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            x: self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            y: self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            z: self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        }
    }
}

/// Wraps an angle to the range `(-pi, pi]`.
pub fn wrap_angle(angle: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut a = angle % two_pi;
    if a > std::f64::consts::PI {
        a -= two_pi;
    } else if a <= -std::f64::consts::PI {
        a += two_pi;
    }
    a
}

/// Clamps `value` to `[lo, hi]`.
///
/// # Panics
///
/// Panics in debug builds if `lo > hi`.
pub fn clamp(value: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
    value.max(lo).min(hi)
}

impl Vec3 {
    /// Serialises the vector (bit-exact) for the persistent store.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.f64(self.x);
        w.f64(self.y);
        w.f64(self.z);
    }

    /// Restores a vector serialised by [`Vec3::encode`].
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> crate::codec::CodecResult<Vec3> {
        Ok(Vec3 {
            x: r.f64()?,
            y: r.f64()?,
            z: r.f64()?,
        })
    }
}

impl Quat {
    /// Serialises the quaternion (bit-exact) for the persistent store.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.f64(self.w);
        w.f64(self.x);
        w.f64(self.y);
        w.f64(self.z);
    }

    /// Restores a quaternion serialised by [`Quat::encode`].
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> crate::codec::CodecResult<Quat> {
        Ok(Quat {
            w: r.f64()?,
            x: r.f64()?,
            y: r.f64()?,
            z: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn vec3_dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), Vec3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn vec3_norm_and_distance() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(v.norm(), 13.0);
        assert_eq!(v.norm_squared(), 169.0);
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(1.0, 1.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.horizontal_distance(b), 0.0);
    }

    #[test]
    fn vec3_normalized_handles_zero() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vec3_clamp_norm() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        let c = v.clamp_norm(1.0);
        assert!((c.norm() - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((c.x / c.y - 3.0 / 4.0).abs() < 1e-12);
        // Below the limit, unchanged.
        assert_eq!(v.clamp_norm(10.0), v);
    }

    #[test]
    fn vec3_lerp() {
        let a = Vec3::ZERO;
        let b = Vec3::new(10.0, 0.0, 0.0);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(5.0, 0.0, 0.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn quat_identity_rotation() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let r = Quat::IDENTITY.rotate(v);
        assert!(r.distance(v) < 1e-12);
    }

    #[test]
    fn quat_yaw_rotation() {
        let q = Quat::from_euler(0.0, 0.0, FRAC_PI_2);
        let v = q.rotate(Vec3::new(1.0, 0.0, 0.0));
        assert!((v.x).abs() < 1e-9);
        assert!((v.y - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quat_euler_round_trip() {
        let cases = [
            (0.1, -0.2, 0.3),
            (0.0, 0.0, PI - 0.01),
            (-0.5, 0.4, -2.0),
            (0.01, 0.0, 0.0),
        ];
        for (roll, pitch, yaw) in cases {
            let q = Quat::from_euler(roll, pitch, yaw);
            let (r, p, y) = q.to_euler();
            assert!((r - roll).abs() < 1e-9, "roll {roll}");
            assert!((p - pitch).abs() < 1e-9, "pitch {pitch}");
            assert!((y - yaw).abs() < 1e-9, "yaw {yaw}");
        }
    }

    #[test]
    fn quat_rotate_inverse_is_inverse() {
        let q = Quat::from_euler(0.3, -0.4, 1.2);
        let v = Vec3::new(1.0, -2.0, 0.5);
        let back = q.rotate_inverse(q.rotate(v));
        assert!(back.distance(v) < 1e-9);
    }

    #[test]
    fn quat_integration_about_z() {
        // Integrating a constant yaw rate of pi/2 rad/s for 1 s should give
        // roughly a 90 degree heading change.
        let mut q = Quat::IDENTITY;
        let omega = Vec3::new(0.0, 0.0, FRAC_PI_2);
        let dt = 0.001;
        for _ in 0..1000 {
            q = q.integrate(omega, dt);
        }
        assert!((q.yaw() - FRAC_PI_2).abs() < 1e-3, "yaw was {}", q.yaw());
    }

    #[test]
    fn quat_normalized_degenerate_is_identity() {
        let q = Quat::new(0.0, 0.0, 0.0, 0.0).normalized();
        assert_eq!(q, Quat::IDENTITY);
        let q = Quat::new(f64::NAN, 0.0, 0.0, 0.0).normalized();
        assert_eq!(q, Quat::IDENTITY);
    }

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert_eq!(wrap_angle(0.0), 0.0);
        assert!((wrap_angle(2.0 * PI)).abs() < 1e-12);
    }

    #[test]
    fn clamp_works() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }
}
