//! Deterministic random number generation for reproducible simulations.
//!
//! All stochastic parts of the simulator (sensor noise) draw from a
//! [`SimRng`] seeded per test run, so a fault-injection scenario replays
//! identically — the property the paper's replay mechanism (§IV.D) relies
//! on.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded random number generator with Gaussian sampling support.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
    /// Cached second value from the Box-Muller transform.
    spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { inner: ChaCha8Rng::seed_from_u64(seed), spare: None }
    }

    /// Returns a uniformly distributed value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Returns a uniformly distributed integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Returns a standard-normal sample using the Box-Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Box-Muller: two uniforms -> two independent normals.
        let u1: f64 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.standard_normal()
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..50).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn index_in_range() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(rng.index(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_zero_panics() {
        let mut rng = SimRng::seed_from_u64(7);
        let _ = rng.index(0);
    }

    #[test]
    fn normal_statistics_are_plausible() {
        let mut rng = SimRng::seed_from_u64(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std = {}", var.sqrt());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
