//! Deterministic random number generation for reproducible simulations.
//!
//! All stochastic parts of the simulator (sensor noise) draw from a
//! [`SimRng`] seeded per test run, so a fault-injection scenario replays
//! identically — the property the paper's replay mechanism (§IV.D) relies
//! on.
//!
//! The generator is a self-contained ChaCha8 stream cipher keyed from the
//! 64-bit seed (the build environment has no crates.io access, so the
//! `rand`/`rand_chacha` crates are not available; the algorithm here is
//! the same reduced-round ChaCha construction they provide).

use crate::codec::{ByteReader, ByteWriter, CodecError, CodecResult};

/// ChaCha block constants ("expand 32-byte k").
const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
/// Number of double-rounds (ChaCha8 = 4 double-rounds).
const CHACHA_DOUBLE_ROUNDS: usize = 4;

/// The raw ChaCha8 keystream generator.
#[derive(Debug, Clone)]
struct ChaCha8 {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    /// Next unread word within `block`; 16 means "block exhausted".
    word_index: usize,
}

impl ChaCha8 {
    fn new(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64 — the
        // same trick `SeedableRng::seed_from_u64` uses.
        let mut state = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let v = splitmix64(&mut state);
            pair[0] = v as u32;
            pair[1] = (v >> 32) as u32;
        }
        ChaCha8 {
            key,
            counter: 0,
            block: [0; 16],
            word_index: 16,
        }
    }

    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..CHACHA_DOUBLE_ROUNDS {
            // Column round.
            Self::quarter_round(&mut state, 0, 4, 8, 12);
            Self::quarter_round(&mut state, 1, 5, 9, 13);
            Self::quarter_round(&mut state, 2, 6, 10, 14);
            Self::quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut state, 0, 5, 10, 15);
            Self::quarter_round(&mut state, 1, 6, 11, 12);
            Self::quarter_round(&mut state, 2, 7, 8, 13);
            Self::quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.word_index = 0;
    }

    fn next_u32(&mut self) -> u32 {
        if self.word_index >= 16 {
            self.refill();
        }
        let word = self.block[self.word_index];
        self.word_index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded random number generator with Gaussian sampling support.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8,
    /// Cached second value from the Box-Muller transform.
    spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8::new(seed),
            spare: None,
        }
    }

    /// Returns a uniformly distributed value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits, the standard float-in-[0,1) recipe.
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Returns a uniformly distributed integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Rejection sampling over the smallest covering power of two keeps
        // the distribution exactly uniform.
        let mask = (n as u64).next_power_of_two() - 1;
        loop {
            let candidate = self.inner.next_u64() & mask;
            if candidate < n as u64 {
                return candidate as usize;
            }
        }
    }

    /// Returns a standard-normal sample using the Box-Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Box-Muller: two uniforms -> two independent normals.
        let u1: f64 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Returns a normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        debug_assert!(std_dev >= 0.0);
        mean + std_dev * self.standard_normal()
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Serialises the full generator state for the persistent snapshot
    /// store.
    ///
    /// The raw state — key, block counter, the current keystream block
    /// and the read cursor into it, plus the Box-Muller spare — must all
    /// travel verbatim: `refill` bumps the counter *after* generating a
    /// block, so the mid-block position cannot be re-derived from the
    /// seed and counter alone.
    pub fn encode(&self, w: &mut ByteWriter) {
        for word in &self.inner.key {
            w.u32(*word);
        }
        w.u64(self.inner.counter);
        for word in &self.inner.block {
            w.u32(*word);
        }
        w.usize(self.inner.word_index);
        w.option(self.spare.as_ref(), |w, v| w.f64(*v));
    }

    /// Restores a generator serialised by [`SimRng::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<SimRng> {
        let mut key = [0u32; 8];
        for word in &mut key {
            *word = r.u32()?;
        }
        let counter = r.u64()?;
        let mut block = [0u32; 16];
        for word in &mut block {
            *word = r.u32()?;
        }
        let word_index = r.usize()?;
        if word_index > 16 {
            return Err(CodecError::Malformed("rng word index"));
        }
        let spare = r.option(|r| r.f64())?;
        Ok(SimRng {
            inner: ChaCha8 {
                key,
                counter,
                block,
                word_index,
            },
            spare,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..50).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn index_in_range() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(rng.index(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn index_zero_panics() {
        let mut rng = SimRng::seed_from_u64(7);
        let _ = rng.index(0);
    }

    #[test]
    fn normal_statistics_are_plausible() {
        let mut rng = SimRng::seed_from_u64(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std = {}", var.sqrt());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn encode_decode_resumes_mid_block_and_mid_box_muller() {
        let mut rng = SimRng::seed_from_u64(1234);
        // Burn an odd number of draws so both the keystream cursor and the
        // Box-Muller spare are mid-flight.
        for _ in 0..7 {
            let _ = rng.uniform();
        }
        let _ = rng.standard_normal(); // leaves a spare cached

        let mut w = ByteWriter::new();
        rng.encode(&mut w);
        let bytes = w.into_bytes();
        let mut reader = ByteReader::new(&bytes);
        let mut restored = SimRng::decode(&mut reader).unwrap();
        reader.finish().unwrap();

        for _ in 0..100 {
            assert_eq!(rng.uniform().to_bits(), restored.uniform().to_bits());
            assert_eq!(
                rng.standard_normal().to_bits(),
                restored.standard_normal().to_bits()
            );
        }
    }

    #[test]
    fn decode_rejects_bad_word_index() {
        let mut rng = SimRng::seed_from_u64(1);
        let _ = rng.uniform();
        let mut w = ByteWriter::new();
        rng.encode(&mut w);
        let mut bytes = w.into_bytes();
        // word_index lives after key (32 bytes) + counter (8) + block (64).
        bytes[104] = 200;
        assert!(SimRng::decode(&mut ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut counts = [0usize; 7];
        for _ in 0..7000 {
            counts[rng.index(7)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "counts = {counts:?}");
        }
    }
}
