//! Simulated sensor suite: identities, readings and noise models.
//!
//! The suite mirrors the 3DR Iris configuration used in the paper's
//! evaluation: redundant IMUs (accelerometer + gyroscope triads), dual
//! GPS, dual barometers, triple compasses and a battery monitor. Each
//! *instance* of a sensor type has a [`SensorRole`] — primary or backup —
//! which is the property Avis's sensor-instance-symmetry pruning exploits.
//!
//! The sensors here produce *true-state-derived, noisy* readings. Clean
//! failures (the paper's fault model: an instance stops communicating and
//! the driver reports it failed) are injected one layer up, by the
//! `avis-hinj` fault injector consulted from the firmware's sensor drivers.

use crate::math::Vec3;
use crate::rng::SimRng;
use crate::vehicle::{RigidBodyState, GRAVITY};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kinds of sensors carried by the simulated vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SensorKind {
    /// Linear accelerometer (part of the IMU).
    Accelerometer,
    /// Rate gyroscope (part of the IMU).
    Gyroscope,
    /// Global positioning system receiver.
    Gps,
    /// Barometric altimeter.
    Barometer,
    /// Magnetometer / compass.
    Compass,
    /// Battery voltage / state-of-charge monitor.
    Battery,
}

impl SensorKind {
    /// Every sensor kind, in a stable order.
    pub const ALL: [SensorKind; 6] = [
        SensorKind::Accelerometer,
        SensorKind::Gyroscope,
        SensorKind::Gps,
        SensorKind::Barometer,
        SensorKind::Compass,
        SensorKind::Battery,
    ];

    /// Short lowercase name used in reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            SensorKind::Accelerometer => "accelerometer",
            SensorKind::Gyroscope => "gyroscope",
            SensorKind::Gps => "gps",
            SensorKind::Barometer => "barometer",
            SensorKind::Compass => "compass",
            SensorKind::Battery => "battery",
        }
    }
}

impl fmt::Display for SensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a sensor instance is the primary for its kind or a backup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SensorRole {
    /// The instance the firmware prefers when healthy.
    Primary,
    /// A redundant instance used after the primary fails.
    Backup,
}

impl fmt::Display for SensorRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorRole::Primary => f.write_str("primary"),
            SensorRole::Backup => f.write_str("backup"),
        }
    }
}

/// Identifies one physical sensor instance: a kind plus an index.
///
/// Index 0 is always the primary instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SensorInstance {
    /// The sensor type.
    pub kind: SensorKind,
    /// Instance index; `0` is the primary.
    pub index: u8,
}

impl SensorInstance {
    /// Creates an instance identifier.
    pub const fn new(kind: SensorKind, index: u8) -> Self {
        SensorInstance { kind, index }
    }

    /// The role implied by the instance index.
    pub fn role(self) -> SensorRole {
        if self.index == 0 {
            SensorRole::Primary
        } else {
            SensorRole::Backup
        }
    }
}

impl fmt::Display for SensorInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.kind, self.index)
    }
}

/// The measurement carried by a sensor reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorValue {
    /// Specific force in the body frame (m/s²).
    Acceleration(Vec3),
    /// Angular rate in the body frame (rad/s).
    AngularRate(Vec3),
    /// GPS solution.
    GpsFix {
        /// Position in the local ENU frame (m).
        position: Vec3,
        /// Velocity in the local ENU frame (m/s).
        velocity: Vec3,
        /// Number of satellites in the solution.
        satellites: u8,
    },
    /// Barometric altitude above the launch point (m).
    PressureAltitude(f64),
    /// Magnetic heading (rad, wrapped to (-pi, pi]).
    MagneticHeading(f64),
    /// Battery status.
    BatteryStatus {
        /// Terminal voltage (V).
        voltage: f64,
        /// Remaining capacity fraction in `[0, 1]`.
        remaining: f64,
    },
}

/// One sample from one sensor instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// Which instance produced the reading.
    pub instance: SensorInstance,
    /// Simulation time of the sample (s).
    pub time: f64,
    /// The measured value.
    pub value: SensorValue,
}

/// Noise configuration for the sensor suite (standard deviations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorNoise {
    /// Accelerometer noise (m/s²).
    pub accel: f64,
    /// Gyroscope noise (rad/s).
    pub gyro: f64,
    /// GPS horizontal position noise (m).
    pub gps_horizontal: f64,
    /// GPS vertical position noise (m). The paper's Figure 1 bug hinges on
    /// GPS altitude being much coarser than IMU-derived altitude.
    pub gps_vertical: f64,
    /// GPS velocity noise (m/s).
    pub gps_velocity: f64,
    /// Barometer altitude noise (m).
    pub baro: f64,
    /// Compass heading noise (rad).
    pub compass: f64,
    /// Battery voltage noise (V).
    pub battery_voltage: f64,
}

impl Default for SensorNoise {
    fn default() -> Self {
        SensorNoise {
            accel: 0.05,
            gyro: 0.002,
            gps_horizontal: 1.2,
            gps_vertical: 2.5,
            gps_velocity: 0.15,
            baro: 0.08,
            compass: 0.02,
            battery_voltage: 0.02,
        }
    }
}

impl SensorNoise {
    /// A noiseless configuration, useful for deterministic unit tests.
    pub fn noiseless() -> Self {
        SensorNoise {
            accel: 0.0,
            gyro: 0.0,
            gps_horizontal: 0.0,
            gps_vertical: 0.0,
            gps_velocity: 0.0,
            baro: 0.0,
            compass: 0.0,
            battery_voltage: 0.0,
        }
    }
}

/// Static description of the on-board sensor complement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSuiteConfig {
    /// Number of accelerometer instances.
    pub accelerometers: u8,
    /// Number of gyroscope instances.
    pub gyroscopes: u8,
    /// Number of GPS receivers.
    pub gps: u8,
    /// Number of barometers.
    pub barometers: u8,
    /// Number of compasses.
    pub compasses: u8,
    /// Number of battery monitors.
    pub batteries: u8,
    /// Noise model.
    pub noise: SensorNoise,
    /// Battery capacity in ampere-seconds of simulated hover time.
    pub battery_endurance_s: f64,
}

impl Default for SensorSuiteConfig {
    fn default() -> Self {
        SensorSuiteConfig::iris()
    }
}

impl SensorSuiteConfig {
    /// The 3DR Iris-like complement used by the paper's experiments:
    /// 3 accelerometers, 3 gyroscopes, 2 GPS, 2 barometers, 3 compasses
    /// and a single battery monitor.
    pub fn iris() -> Self {
        SensorSuiteConfig {
            accelerometers: 3,
            gyroscopes: 3,
            gps: 2,
            barometers: 2,
            compasses: 3,
            batteries: 1,
            noise: SensorNoise::default(),
            battery_endurance_s: 1200.0,
        }
    }

    /// A minimal single-instance complement (the "simple vehicle with 7
    /// onboard sensors and no backups" from §IV.B-style discussions).
    pub fn minimal() -> Self {
        SensorSuiteConfig {
            accelerometers: 1,
            gyroscopes: 1,
            gps: 1,
            barometers: 1,
            compasses: 1,
            batteries: 1,
            noise: SensorNoise::default(),
            battery_endurance_s: 1200.0,
        }
    }

    /// Number of instances of the given kind.
    pub fn instance_count(&self, kind: SensorKind) -> u8 {
        match kind {
            SensorKind::Accelerometer => self.accelerometers,
            SensorKind::Gyroscope => self.gyroscopes,
            SensorKind::Gps => self.gps,
            SensorKind::Barometer => self.barometers,
            SensorKind::Compass => self.compasses,
            SensorKind::Battery => self.batteries,
        }
    }

    /// Enumerates every sensor instance on the vehicle.
    pub fn instances(&self) -> Vec<SensorInstance> {
        let mut out = Vec::new();
        for kind in SensorKind::ALL {
            for idx in 0..self.instance_count(kind) {
                out.push(SensorInstance::new(kind, idx));
            }
        }
        out
    }

    /// Total number of sensor instances.
    pub fn total_instances(&self) -> usize {
        SensorKind::ALL
            .iter()
            .map(|&k| self.instance_count(k) as usize)
            .sum()
    }
}

/// The live sensor suite: holds per-instance noise state and produces a
/// batch of readings from the true physical state each simulation step.
#[derive(Debug, Clone)]
pub struct SensorSuite {
    pub(crate) config: SensorSuiteConfig,
    pub(crate) rng: SimRng,
    /// Per-accelerometer constant bias (body frame).
    pub(crate) accel_bias: Vec<Vec3>,
    /// Per-gyroscope constant bias (body frame).
    pub(crate) gyro_bias: Vec<Vec3>,
    /// Last GPS fix per receiver, held between GPS epochs.
    pub(crate) last_gps: Vec<Option<SensorValue>>,
    /// GPS update interval (s).
    pub(crate) gps_interval: f64,
    /// Time of last GPS epoch.
    pub(crate) last_gps_time: f64,
    /// Remaining battery fraction.
    pub(crate) battery_remaining: f64,
}

/// The per-run *mutable* slice of a [`SensorSuite`]: the noise RNG
/// stream, the GPS fixes held between epochs, the epoch clock and the
/// battery charge. The static complement — the configuration and the
/// per-instance biases drawn once at seed time — is excluded, which is
/// what makes a delta-encoded snapshot chain cheap: consecutive cuts of
/// one run differ only in this dynamic slice.
#[derive(Debug, Clone)]
pub struct SensorDynamics {
    rng: SimRng,
    last_gps: Vec<Option<SensorValue>>,
    last_gps_time: f64,
    battery_remaining: f64,
}

impl SensorDynamics {
    /// Approximate heap + inline bytes of the captured dynamic state,
    /// used by the checkpoint stores' memory budgets.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.last_gps.len() * std::mem::size_of::<Option<SensorValue>>()
    }

    /// Serialises the dynamic sensor state for the persistent store.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        self.rng.encode(w);
        w.seq(&self.last_gps, |w, fix| {
            w.option(fix.as_ref(), |w, v| v.encode(w))
        });
        w.f64(self.last_gps_time);
        w.f64(self.battery_remaining);
    }

    /// Restores state serialised by [`SensorDynamics::encode`].
    pub fn decode(
        r: &mut crate::codec::ByteReader<'_>,
    ) -> crate::codec::CodecResult<SensorDynamics> {
        Ok(SensorDynamics {
            rng: SimRng::decode(r)?,
            last_gps: r.seq(|r| r.option(SensorValue::decode))?,
            last_gps_time: r.f64()?,
            battery_remaining: r.f64()?,
        })
    }
}

impl SensorKind {
    /// Serialises the kind as a one-byte tag (index into
    /// [`SensorKind::ALL`]).
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        let tag = SensorKind::ALL
            .iter()
            .position(|k| k == self)
            .expect("SensorKind::ALL covers every kind") as u8;
        w.u8(tag);
    }

    /// Restores a kind serialised by [`SensorKind::encode`].
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> crate::codec::CodecResult<SensorKind> {
        let tag = r.u8()? as usize;
        SensorKind::ALL
            .get(tag)
            .copied()
            .ok_or(crate::codec::CodecError::Malformed("sensor kind tag"))
    }
}

impl SensorInstance {
    /// Serialises the instance identifier.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        self.kind.encode(w);
        w.u8(self.index);
    }

    /// Restores an identifier serialised by [`SensorInstance::encode`].
    pub fn decode(
        r: &mut crate::codec::ByteReader<'_>,
    ) -> crate::codec::CodecResult<SensorInstance> {
        Ok(SensorInstance {
            kind: SensorKind::decode(r)?,
            index: r.u8()?,
        })
    }
}

impl SensorValue {
    /// Serialises the measurement (bit-exact) for the persistent store.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        match self {
            SensorValue::Acceleration(v) => {
                w.u8(0);
                v.encode(w);
            }
            SensorValue::AngularRate(v) => {
                w.u8(1);
                v.encode(w);
            }
            SensorValue::GpsFix {
                position,
                velocity,
                satellites,
            } => {
                w.u8(2);
                position.encode(w);
                velocity.encode(w);
                w.u8(*satellites);
            }
            SensorValue::PressureAltitude(alt) => {
                w.u8(3);
                w.f64(*alt);
            }
            SensorValue::MagneticHeading(heading) => {
                w.u8(4);
                w.f64(*heading);
            }
            SensorValue::BatteryStatus { voltage, remaining } => {
                w.u8(5);
                w.f64(*voltage);
                w.f64(*remaining);
            }
        }
    }

    /// Restores a measurement serialised by [`SensorValue::encode`].
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> crate::codec::CodecResult<SensorValue> {
        Ok(match r.u8()? {
            0 => SensorValue::Acceleration(Vec3::decode(r)?),
            1 => SensorValue::AngularRate(Vec3::decode(r)?),
            2 => SensorValue::GpsFix {
                position: Vec3::decode(r)?,
                velocity: Vec3::decode(r)?,
                satellites: r.u8()?,
            },
            3 => SensorValue::PressureAltitude(r.f64()?),
            4 => SensorValue::MagneticHeading(r.f64()?),
            5 => SensorValue::BatteryStatus {
                voltage: r.f64()?,
                remaining: r.f64()?,
            },
            _ => return Err(crate::codec::CodecError::Malformed("sensor value tag")),
        })
    }
}

impl SensorSuite {
    /// Creates a suite with per-instance biases drawn from `seed`.
    pub fn new(config: SensorSuiteConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let accel_bias = (0..config.accelerometers)
            .map(|_| {
                Vec3::new(
                    rng.normal(0.0, config.noise.accel * 0.5),
                    rng.normal(0.0, config.noise.accel * 0.5),
                    rng.normal(0.0, config.noise.accel * 0.5),
                )
            })
            .collect();
        let gyro_bias = (0..config.gyroscopes)
            .map(|_| {
                Vec3::new(
                    rng.normal(0.0, config.noise.gyro * 0.5),
                    rng.normal(0.0, config.noise.gyro * 0.5),
                    rng.normal(0.0, config.noise.gyro * 0.5),
                )
            })
            .collect();
        let last_gps = vec![None; config.gps as usize];
        SensorSuite {
            config,
            rng,
            accel_bias,
            gyro_bias,
            last_gps,
            gps_interval: 0.2,
            last_gps_time: -1.0,
            battery_remaining: 1.0,
        }
    }

    /// The static configuration of the suite.
    pub fn config(&self) -> &SensorSuiteConfig {
        &self.config
    }

    /// Remaining battery fraction in `[0, 1]`.
    pub fn battery_remaining(&self) -> f64 {
        self.battery_remaining
    }

    /// Forces the battery to a specific remaining fraction (used by
    /// experiments that need a low-battery precondition, e.g. PX4-13291).
    pub fn set_battery_remaining(&mut self, remaining: f64) {
        self.battery_remaining = remaining.clamp(0.0, 1.0);
    }

    /// Captures the per-run dynamic state (see [`SensorDynamics`]). The
    /// configuration and the seed-time biases are *not* captured: a
    /// delta-encoded snapshot takes them from its chain's base keyframe.
    pub fn dynamics(&self) -> SensorDynamics {
        SensorDynamics {
            rng: self.rng.clone(),
            last_gps: self.last_gps.clone(),
            last_gps_time: self.last_gps_time,
            battery_remaining: self.battery_remaining,
        }
    }

    /// Overwrites the per-run dynamic state captured by
    /// [`SensorSuite::dynamics`]. Only valid between suites of the same
    /// run (identical configuration and seed-time biases).
    pub fn restore_dynamics(&mut self, dynamics: &SensorDynamics) {
        self.rng = dynamics.rng.clone();
        self.last_gps.clone_from(&dynamics.last_gps);
        self.last_gps_time = dynamics.last_gps_time;
        self.battery_remaining = dynamics.battery_remaining;
    }

    /// Samples every sensor instance at simulation time `time` given the
    /// true rigid-body state and mean motor throttle (battery drain model).
    ///
    /// Allocates a fresh vector per call; hot loops should reuse a buffer
    /// through [`SensorSuite::sample_into`].
    pub fn sample(
        &mut self,
        state: &RigidBodyState,
        mean_throttle: f64,
        time: f64,
        dt: f64,
    ) -> Vec<SensorReading> {
        let mut readings = Vec::with_capacity(self.config.total_instances());
        self.sample_into(&mut readings, state, mean_throttle, time, dt);
        readings
    }

    /// Samples every sensor instance, appending the readings to
    /// `readings` (which the caller clears between steps). A buffer
    /// reused across steps reaches steady-state capacity after the first
    /// step, making subsequent steps allocation-free.
    pub fn sample_into(
        &mut self,
        readings: &mut Vec<SensorReading>,
        state: &RigidBodyState,
        mean_throttle: f64,
        time: f64,
        dt: f64,
    ) {
        let noise = self.config.noise.clone();

        // Battery drain: idle draw plus throttle-proportional draw.
        let drain_rate =
            (0.15 + 0.85 * mean_throttle.clamp(0.0, 1.0)) / self.config.battery_endurance_s;
        self.battery_remaining = (self.battery_remaining - drain_rate * dt).max(0.0);

        // Specific force measured by an accelerometer: f = R^T (a + g·ẑ).
        let specific_force_world = state.acceleration + Vec3::new(0.0, 0.0, GRAVITY);
        let specific_force_body = state.attitude.rotate_inverse(specific_force_world);

        for idx in 0..self.config.accelerometers {
            let bias = self.accel_bias[idx as usize];
            let value = SensorValue::Acceleration(
                specific_force_body
                    + bias
                    + Vec3::new(
                        self.rng.normal(0.0, noise.accel),
                        self.rng.normal(0.0, noise.accel),
                        self.rng.normal(0.0, noise.accel),
                    ),
            );
            readings.push(SensorReading {
                instance: SensorInstance::new(SensorKind::Accelerometer, idx),
                time,
                value,
            });
        }

        for idx in 0..self.config.gyroscopes {
            let bias = self.gyro_bias[idx as usize];
            let value = SensorValue::AngularRate(
                state.angular_velocity
                    + bias
                    + Vec3::new(
                        self.rng.normal(0.0, noise.gyro),
                        self.rng.normal(0.0, noise.gyro),
                        self.rng.normal(0.0, noise.gyro),
                    ),
            );
            readings.push(SensorReading {
                instance: SensorInstance::new(SensorKind::Gyroscope, idx),
                time,
                value,
            });
        }

        // GPS updates at its own (slower) epoch rate; between epochs the
        // receiver repeats its last fix, as real receivers do.
        let gps_epoch = self.last_gps_time < 0.0 || time - self.last_gps_time >= self.gps_interval;
        if gps_epoch {
            self.last_gps_time = time;
        }
        for idx in 0..self.config.gps {
            if gps_epoch || self.last_gps[idx as usize].is_none() {
                let fix = SensorValue::GpsFix {
                    position: state.position
                        + Vec3::new(
                            self.rng.normal(0.0, noise.gps_horizontal),
                            self.rng.normal(0.0, noise.gps_horizontal),
                            self.rng.normal(0.0, noise.gps_vertical),
                        ),
                    velocity: state.velocity
                        + Vec3::new(
                            self.rng.normal(0.0, noise.gps_velocity),
                            self.rng.normal(0.0, noise.gps_velocity),
                            self.rng.normal(0.0, noise.gps_velocity),
                        ),
                    satellites: 12,
                };
                self.last_gps[idx as usize] = Some(fix);
            }
            readings.push(SensorReading {
                instance: SensorInstance::new(SensorKind::Gps, idx),
                time,
                value: self.last_gps[idx as usize].expect("gps fix populated above"),
            });
        }

        for idx in 0..self.config.barometers {
            let value =
                SensorValue::PressureAltitude(state.position.z + self.rng.normal(0.0, noise.baro));
            readings.push(SensorReading {
                instance: SensorInstance::new(SensorKind::Barometer, idx),
                time,
                value,
            });
        }

        let yaw = state.attitude.yaw();
        for idx in 0..self.config.compasses {
            let value = SensorValue::MagneticHeading(crate::math::wrap_angle(
                yaw + self.rng.normal(0.0, noise.compass),
            ));
            readings.push(SensorReading {
                instance: SensorInstance::new(SensorKind::Compass, idx),
                time,
                value,
            });
        }

        for idx in 0..self.config.batteries {
            // Simple LiPo-like discharge curve: 12.6 V full, 10.5 V empty,
            // with additional sag proportional to throttle.
            let voltage = 10.5 + 2.1 * self.battery_remaining - 0.4 * mean_throttle
                + self.rng.normal(0.0, noise.battery_voltage);
            let value = SensorValue::BatteryStatus {
                voltage,
                remaining: self.battery_remaining,
            };
            readings.push(SensorReading {
                instance: SensorInstance::new(SensorKind::Battery, idx),
                time,
                value,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::Quat;

    fn level_state_at(altitude: f64) -> RigidBodyState {
        RigidBodyState {
            position: Vec3::new(0.0, 0.0, altitude),
            velocity: Vec3::ZERO,
            acceleration: Vec3::ZERO,
            attitude: Quat::IDENTITY,
            angular_velocity: Vec3::ZERO,
        }
    }

    fn noiseless_suite(config: SensorSuiteConfig) -> SensorSuite {
        let mut config = config;
        config.noise = SensorNoise::noiseless();
        SensorSuite::new(config, 1)
    }

    #[test]
    fn instance_roles() {
        assert_eq!(
            SensorInstance::new(SensorKind::Gps, 0).role(),
            SensorRole::Primary
        );
        assert_eq!(
            SensorInstance::new(SensorKind::Gps, 1).role(),
            SensorRole::Backup
        );
        assert_eq!(
            SensorInstance::new(SensorKind::Compass, 2).role(),
            SensorRole::Backup
        );
    }

    #[test]
    fn iris_config_counts() {
        let cfg = SensorSuiteConfig::iris();
        assert_eq!(cfg.total_instances(), 3 + 3 + 2 + 2 + 3 + 1);
        assert_eq!(cfg.instances().len(), cfg.total_instances());
        assert_eq!(cfg.instance_count(SensorKind::Compass), 3);
        // Exactly one primary per kind.
        for kind in SensorKind::ALL {
            let primaries = cfg
                .instances()
                .into_iter()
                .filter(|i| i.kind == kind && i.role() == SensorRole::Primary)
                .count();
            assert_eq!(primaries, 1, "{kind}");
        }
    }

    #[test]
    fn sample_produces_one_reading_per_instance() {
        let mut suite = noiseless_suite(SensorSuiteConfig::iris());
        let readings = suite.sample(&level_state_at(10.0), 0.4, 0.0, 0.001);
        assert_eq!(readings.len(), SensorSuiteConfig::iris().total_instances());
        // All instances distinct.
        let mut seen: Vec<SensorInstance> = readings.iter().map(|r| r.instance).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), readings.len());
    }

    #[test]
    fn noiseless_level_hover_measurements() {
        let mut suite = noiseless_suite(SensorSuiteConfig::minimal());
        let readings = suite.sample(&level_state_at(20.0), 0.4, 0.0, 0.001);
        for r in readings {
            match r.value {
                SensorValue::Acceleration(a) => {
                    // Level, unaccelerated flight: specific force = +g on body z.
                    assert!(a.x.abs() < 1e-9 && a.y.abs() < 1e-9);
                    assert!((a.z - GRAVITY).abs() < 1e-9);
                }
                SensorValue::AngularRate(w) => assert!(w.norm() < 1e-12),
                SensorValue::GpsFix {
                    position,
                    velocity,
                    satellites,
                } => {
                    assert!((position.z - 20.0).abs() < 1e-9);
                    assert!(velocity.norm() < 1e-9);
                    assert!(satellites >= 6);
                }
                SensorValue::PressureAltitude(alt) => assert!((alt - 20.0).abs() < 1e-9),
                SensorValue::MagneticHeading(h) => assert!(h.abs() < 1e-9),
                SensorValue::BatteryStatus { voltage, remaining } => {
                    assert!(voltage > 10.0 && voltage < 13.0);
                    assert!(remaining > 0.99);
                }
            }
        }
    }

    #[test]
    fn gps_updates_at_slower_rate() {
        let mut suite = SensorSuite::new(SensorSuiteConfig::iris(), 3);
        let state = level_state_at(15.0);
        let first = suite.sample(&state, 0.4, 0.0, 0.001);
        let second = suite.sample(&state, 0.4, 0.001, 0.001);
        let gps_first = first
            .iter()
            .find(|r| r.instance.kind == SensorKind::Gps)
            .unwrap()
            .value;
        let gps_second = second
            .iter()
            .find(|r| r.instance.kind == SensorKind::Gps)
            .unwrap()
            .value;
        // Between epochs the fix is repeated exactly (noise included).
        assert_eq!(gps_first, gps_second);
        // After the epoch interval the fix refreshes.
        let third = suite.sample(&state, 0.4, 0.25, 0.001);
        let gps_third = third
            .iter()
            .find(|r| r.instance.kind == SensorKind::Gps)
            .unwrap()
            .value;
        assert_ne!(gps_first, gps_third);
    }

    #[test]
    fn battery_drains_with_throttle() {
        let mut suite = noiseless_suite(SensorSuiteConfig::minimal());
        let state = level_state_at(5.0);
        for step in 0..10_000 {
            suite.sample(&state, 0.8, step as f64 * 0.01, 0.01);
        }
        assert!(suite.battery_remaining() < 1.0);
        assert!(suite.battery_remaining() > 0.0);
        let mut idle = noiseless_suite(SensorSuiteConfig::minimal());
        for step in 0..10_000 {
            idle.sample(&state, 0.0, step as f64 * 0.01, 0.01);
        }
        assert!(idle.battery_remaining() > suite.battery_remaining());
    }

    #[test]
    fn set_battery_remaining_clamps() {
        let mut suite = noiseless_suite(SensorSuiteConfig::minimal());
        suite.set_battery_remaining(2.0);
        assert_eq!(suite.battery_remaining(), 1.0);
        suite.set_battery_remaining(-1.0);
        assert_eq!(suite.battery_remaining(), 0.0);
    }

    #[test]
    fn same_seed_reproduces_readings() {
        let cfg = SensorSuiteConfig::iris();
        let mut a = SensorSuite::new(cfg.clone(), 77);
        let mut b = SensorSuite::new(cfg, 77);
        let state = level_state_at(8.0);
        for step in 0..50 {
            let t = step as f64 * 0.001;
            assert_eq!(
                a.sample(&state, 0.5, t, 0.001),
                b.sample(&state, 0.5, t, 0.001)
            );
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(SensorKind::Gps.to_string(), "gps");
        assert_eq!(
            SensorInstance::new(SensorKind::Compass, 2).to_string(),
            "compass[2]"
        );
        assert_eq!(SensorRole::Primary.to_string(), "primary");
    }
}
