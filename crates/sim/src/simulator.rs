//! The lock-step simulator that advances physics, samples sensors and
//! detects collisions.
//!
//! One call to [`Simulator::step`] corresponds to one *simulation
//! time-step* in the paper (Fig. 7): the workload yields control, the
//! simulator advances time by a fixed unit, synthesizes sensor readings,
//! accepts actuator outputs and computes the vehicle's next physical
//! state.

use crate::environment::{Collision, Environment};
use crate::math::Vec3;
use crate::sensors::{SensorReading, SensorSuite, SensorSuiteConfig};
use crate::vehicle::{MotorCommands, Quadcopter, RigidBodyState, VehicleParams};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration for a simulation instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Fixed simulation time-step (s). The paper uses 1 ms.
    pub dt: f64,
    /// Vehicle physical parameters.
    pub vehicle: VehicleParams,
    /// Sensor complement and noise.
    pub sensors: SensorSuiteConfig,
    /// RNG seed for sensor noise.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            dt: 0.001,
            vehicle: VehicleParams::default(),
            sensors: SensorSuiteConfig::iris(),
            seed: 0,
        }
    }
}

/// A compact snapshot of the physical state exposed to the invariant
/// monitor: the `(P, α, ·)` part of the state tuple in §IV.C.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicalState {
    /// Simulation time (s).
    pub time: f64,
    /// World-frame position (m).
    pub position: Vec3,
    /// World-frame velocity (m/s).
    pub velocity: Vec3,
    /// World-frame acceleration (m/s²).
    pub acceleration: Vec3,
    /// Yaw heading (rad).
    pub heading: f64,
    /// Whether the vehicle is resting on the ground.
    pub on_ground: bool,
}

/// The result of advancing the simulation by one step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutput {
    /// The vehicle's new physical state.
    pub state: PhysicalState,
    /// Sensor samples for this step (true values; fault injection happens
    /// in the firmware's drivers).
    pub readings: Vec<SensorReading>,
    /// A collision detected during this step, if any.
    pub collision: Option<Collision>,
    /// Indices of fences violated at the new position.
    pub violated_fences: Vec<usize>,
}

impl StepOutput {
    /// An output buffer ready to be filled by [`Simulator::step_into`].
    /// Reusing one buffer across steps keeps the lock-step loop free of
    /// per-step heap allocations.
    pub fn empty() -> Self {
        StepOutput {
            state: PhysicalState {
                time: 0.0,
                position: Vec3::ZERO,
                velocity: Vec3::ZERO,
                acceleration: Vec3::ZERO,
                heading: 0.0,
                on_ground: true,
            },
            readings: Vec::new(),
            collision: None,
            violated_fences: Vec::new(),
        }
    }
}

impl Default for StepOutput {
    fn default() -> Self {
        StepOutput::empty()
    }
}

/// A [`StepOutput`] packed for delta-encoded snapshot storage: the
/// sensor readings are flattened into one float array plus a compact
/// instance list instead of a `Vec` of tagged [`SensorValue`] enums —
/// roughly a third of the memory, bit-exactly reversible. A snapshot
/// chain holds one of these per delta cut, so the saving multiplies by
/// the chain length.
#[derive(Debug, Clone)]
pub struct PackedStepOutput {
    state: PhysicalState,
    collision: Option<Collision>,
    violated_fences: Vec<usize>,
    /// Sample time shared by every reading of the step (readings are
    /// produced by one [`SensorSuite::sample_into`] call).
    time: f64,
    instances: Vec<crate::sensors::SensorInstance>,
    /// Per-reading float payload, concatenated in instance order (the
    /// per-kind layout is fixed: accelerometer/gyroscope 3, GPS 6,
    /// barometer/compass 1, battery 2).
    floats: Vec<f64>,
    /// Per-GPS-reading satellite counts, in instance order.
    satellites: Vec<u8>,
}

impl PackedStepOutput {
    /// Packs a step output. Readings are assumed to come from one
    /// [`Simulator::step_into`] call (one shared sample time).
    pub fn pack(output: &StepOutput) -> Self {
        use crate::sensors::SensorValue;
        let time = output.readings.first().map(|r| r.time).unwrap_or(0.0);
        debug_assert!(
            output.readings.iter().all(|r| r.time == time),
            "step readings share one sample time"
        );
        let mut packed = PackedStepOutput {
            state: output.state,
            collision: output.collision,
            violated_fences: output.violated_fences.clone(),
            time,
            instances: Vec::with_capacity(output.readings.len()),
            floats: Vec::with_capacity(output.readings.len() * 3),
            satellites: Vec::new(),
        };
        for reading in &output.readings {
            packed.instances.push(reading.instance);
            match reading.value {
                SensorValue::Acceleration(v) | SensorValue::AngularRate(v) => {
                    packed.floats.extend([v.x, v.y, v.z]);
                }
                SensorValue::GpsFix {
                    position,
                    velocity,
                    satellites,
                } => {
                    packed.floats.extend([
                        position.x, position.y, position.z, velocity.x, velocity.y, velocity.z,
                    ]);
                    packed.satellites.push(satellites);
                }
                SensorValue::PressureAltitude(v) | SensorValue::MagneticHeading(v) => {
                    packed.floats.push(v);
                }
                SensorValue::BatteryStatus { voltage, remaining } => {
                    packed.floats.extend([voltage, remaining]);
                }
            }
        }
        packed
    }

    /// Rebuilds the exact [`StepOutput`] that was packed.
    pub fn unpack(&self) -> StepOutput {
        use crate::sensors::{SensorKind, SensorValue};
        let mut readings = Vec::with_capacity(self.instances.len());
        let mut floats = self.floats.iter().copied();
        let mut next = || floats.next().expect("packed float count matches layout");
        let mut satellites = self.satellites.iter().copied();
        for &instance in &self.instances {
            let value = match instance.kind {
                SensorKind::Accelerometer => {
                    SensorValue::Acceleration(Vec3::new(next(), next(), next()))
                }
                SensorKind::Gyroscope => {
                    SensorValue::AngularRate(Vec3::new(next(), next(), next()))
                }
                SensorKind::Gps => SensorValue::GpsFix {
                    position: Vec3::new(next(), next(), next()),
                    velocity: Vec3::new(next(), next(), next()),
                    satellites: satellites.next().expect("one count per GPS reading"),
                },
                SensorKind::Barometer => SensorValue::PressureAltitude(next()),
                SensorKind::Compass => SensorValue::MagneticHeading(next()),
                SensorKind::Battery => SensorValue::BatteryStatus {
                    voltage: next(),
                    remaining: next(),
                },
            };
            readings.push(SensorReading {
                instance,
                time: self.time,
                value,
            });
        }
        StepOutput {
            state: self.state,
            readings,
            collision: self.collision,
            violated_fences: self.violated_fences.clone(),
        }
    }

    /// Approximate heap + inline bytes exclusively owned by the packed
    /// form.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.violated_fences.len() * std::mem::size_of::<usize>()
            + self.instances.len() * std::mem::size_of::<crate::sensors::SensorInstance>()
            + self.floats.len() * std::mem::size_of::<f64>()
            + self.satellites.len()
    }

    /// Serialises the packed output (bit-exact) for the persistent store.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.f64(self.state.time);
        self.state.position.encode(w);
        self.state.velocity.encode(w);
        self.state.acceleration.encode(w);
        w.f64(self.state.heading);
        w.bool(self.state.on_ground);
        w.option(self.collision.as_ref(), |w, c| c.encode(w));
        w.seq(&self.violated_fences, |w, i| w.usize(*i));
        w.f64(self.time);
        w.seq(&self.instances, |w, i| i.encode(w));
        w.seq(&self.floats, |w, v| w.f64(*v));
        w.bytes(&self.satellites);
    }

    /// Restores a packed output serialised by [`PackedStepOutput::encode`].
    pub fn decode(
        r: &mut crate::codec::ByteReader<'_>,
    ) -> crate::codec::CodecResult<PackedStepOutput> {
        Ok(PackedStepOutput {
            state: PhysicalState {
                time: r.f64()?,
                position: Vec3::decode(r)?,
                velocity: Vec3::decode(r)?,
                acceleration: Vec3::decode(r)?,
                heading: r.f64()?,
                on_ground: r.bool()?,
            },
            collision: r.option(Collision::decode)?,
            violated_fences: r.seq(|r| r.usize())?,
            time: r.f64()?,
            instances: r.seq(crate::sensors::SensorInstance::decode)?,
            floats: r.seq(|r| r.f64())?,
            satellites: r.bytes()?,
        })
        .and_then(|packed: PackedStepOutput| {
            // Validate the fixed per-kind layout so a corrupt blob can
            // never panic a later unpack().
            use crate::sensors::SensorKind;
            let mut expected_floats = 0usize;
            let mut expected_sats = 0usize;
            for instance in &packed.instances {
                expected_floats += match instance.kind {
                    SensorKind::Accelerometer | SensorKind::Gyroscope => 3,
                    SensorKind::Gps => {
                        expected_sats += 1;
                        6
                    }
                    SensorKind::Barometer | SensorKind::Compass => 1,
                    SensorKind::Battery => 2,
                };
            }
            if packed.floats.len() != expected_floats || packed.satellites.len() != expected_sats {
                return Err(crate::codec::CodecError::Malformed(
                    "packed reading layout mismatch",
                ));
            }
            Ok(packed)
        })
    }
}

/// A point-in-time capture of a [`Simulator`], taken mid-run by
/// [`Simulator::snapshot`]. Everything that feeds the simulation forward
/// — vehicle rigid-body state, environment, sensor-noise RNG stream,
/// accumulated time and collision bookkeeping — is captured, so a
/// restored simulator continues bit-identically to the original: the same
/// motor-command sequence produces the same [`StepOutput`]s.
///
/// Capture is O(1) in the environment: the simulator holds its
/// environment behind an `Arc`, so every snapshot along a run (and every
/// fork) shares one copy of the fence/obstacle geometry instead of
/// cloning it.
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    pub(crate) sim: Simulator,
}

impl SimSnapshot {
    /// Simulation time at which the snapshot was taken (s).
    pub fn time(&self) -> f64 {
        self.sim.time
    }

    /// Rebuilds the captured simulator.
    pub fn restore(&self) -> Simulator {
        self.sim.clone()
    }

    /// Consuming form of [`SimSnapshot::restore`], for callers that own
    /// the snapshot and want to avoid the extra clone.
    pub fn into_restored(self) -> Simulator {
        self.sim
    }

    /// Approximate heap footprint *exclusively owned* by the captured
    /// state (bytes), used by checkpoint caches to enforce their memory
    /// budget. The sensor suite dominates; it is bounded per
    /// configuration, so a flat estimate suffices. The environment is
    /// `Arc`-shared across every snapshot of a run and accounted once
    /// through [`SimSnapshot::for_each_chunk`].
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Simulator>() + self.sim.config.sensors.total_instances() * 192
    }

    /// Visits the `Arc`-shared parts of the capture as `(identity,
    /// bytes)` pairs, so a snapshot store can charge each shared block
    /// exactly once however many snapshots reference it.
    pub fn for_each_chunk(&self, f: &mut dyn FnMut(usize, usize)) {
        f(
            // avis-lint: allow(d2, reason = "environment identity for memory-budget dedup only; never feeds replay, hashing or ordering")
            Arc::as_ptr(&self.sim.env) as usize,
            std::mem::size_of::<Environment>() + self.sim.env.fences().len() * 128,
        );
    }

    /// The delta from `prev` to this capture: everything that evolves
    /// while a run executes (vehicle dynamics, sensor noise stream, time
    /// and collision bookkeeping). The static complement — configuration,
    /// seed-time sensor biases, the `Arc`-shared environment — is *not*
    /// stored; [`SimSnapshot::apply`] takes it from the base capture, so
    /// a chain of snapshots stores it exactly once.
    ///
    /// Only valid between captures of the same run: both must share the
    /// configuration (and therefore the biases) of `prev`.
    pub fn diff(&self, prev: &SimSnapshot) -> SimDelta {
        debug_assert!(
            self.sim.config == prev.sim.config,
            "sim deltas only exist within one run"
        );
        SimDelta {
            quad: self.sim.quad.dynamics(),
            sensors: self.sim.sensors.dynamics(),
            time: self.sim.time,
            steps: self.sim.steps,
            first_collision: self.sim.first_collision,
            was_airborne: self.sim.was_airborne,
        }
    }

    /// Re-materialises the capture `delta` was diffed *to*, using `self`
    /// as the base capture `delta` was diffed *from* (or any earlier
    /// capture of the same run — the delta stores the complete dynamic
    /// state, so any same-run base yields the identical result).
    pub fn apply(&self, delta: &SimDelta) -> SimSnapshot {
        let mut sim = self.sim.clone();
        sim.quad.restore_dynamics(&delta.quad);
        sim.sensors.restore_dynamics(&delta.sensors);
        sim.time = delta.time;
        sim.steps = delta.steps;
        sim.first_collision = delta.first_collision;
        sim.was_airborne = delta.was_airborne;
        SimSnapshot { sim }
    }
}

/// The dynamic slice of a [`SimSnapshot`] relative to an earlier capture
/// of the same run (see [`SimSnapshot::diff`]). Far smaller than a full
/// capture: the configuration, the seed-time sensor biases and the
/// environment are all taken from the chain's base keyframe at
/// [`SimSnapshot::apply`] time.
#[derive(Debug, Clone)]
pub struct SimDelta {
    quad: crate::vehicle::QuadDynamics,
    sensors: crate::sensors::SensorDynamics,
    time: f64,
    steps: u64,
    first_collision: Option<Collision>,
    was_airborne: bool,
}

impl SimDelta {
    /// Simulation time of the captured cut (s).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Approximate heap + inline bytes exclusively owned by the delta,
    /// used by the checkpoint stores' memory budgets.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<crate::sensors::SensorDynamics>()
            + self.sensors.approx_bytes()
    }

    /// Serialises the delta (bit-exact) for the persistent store.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        self.quad.encode(w);
        self.sensors.encode(w);
        w.f64(self.time);
        w.u64(self.steps);
        w.option(self.first_collision.as_ref(), |w, c| c.encode(w));
        w.bool(self.was_airborne);
    }

    /// Restores a delta serialised by [`SimDelta::encode`].
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> crate::codec::CodecResult<SimDelta> {
        Ok(SimDelta {
            quad: crate::vehicle::QuadDynamics::decode(r)?,
            sensors: crate::sensors::SensorDynamics::decode(r)?,
            time: r.f64()?,
            steps: r.u64()?,
            first_collision: r.option(Collision::decode)?,
            was_airborne: r.bool()?,
        })
    }
}

/// The software-in-the-loop simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    pub(crate) config: SimConfig,
    pub(crate) quad: Quadcopter,
    pub(crate) env: Arc<Environment>,
    pub(crate) sensors: SensorSuite,
    pub(crate) time: f64,
    pub(crate) steps: u64,
    pub(crate) first_collision: Option<Collision>,
    pub(crate) was_airborne: bool,
}

impl Simulator {
    /// Creates a simulator with the vehicle at rest at the environment's
    /// home position.
    pub fn new(config: SimConfig, env: Environment) -> Self {
        Simulator::new_shared(config, Arc::new(env))
    }

    /// [`Simulator::new`] over an already-shared environment: the
    /// simulator keeps the `Arc`, so repeated runs of the same workload
    /// (and every snapshot they record) share one copy of the geometry.
    pub fn new_shared(config: SimConfig, env: Arc<Environment>) -> Self {
        assert!(
            config.dt > 0.0 && config.dt <= 0.1,
            "dt must be in (0, 0.1]"
        );
        let mut quad = Quadcopter::new(config.vehicle.clone());
        quad.set_state(RigidBodyState::at_rest(env.home()));
        let sensors = SensorSuite::new(config.sensors.clone(), config.seed);
        Simulator {
            config,
            quad,
            env,
            sensors,
            time: 0.0,
            steps: 0,
            first_collision: None,
            was_airborne: false,
        }
    }

    /// Creates a simulator with default configuration in an open field.
    pub fn with_defaults() -> Self {
        Simulator::new(SimConfig::default(), Environment::open_field())
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The environment model.
    pub fn environment(&self) -> &Environment {
        &self.env
    }

    /// The shared environment handle (cloning it is O(1)).
    pub fn shared_environment(&self) -> Arc<Environment> {
        Arc::clone(&self.env)
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The first collision observed during this run, if any.
    pub fn first_collision(&self) -> Option<Collision> {
        self.first_collision
    }

    /// Mutable access to the sensor suite (battery preconditioning, etc.).
    pub fn sensors_mut(&mut self) -> &mut SensorSuite {
        &mut self.sensors
    }

    /// The vehicle's true rigid-body state.
    pub fn true_state(&self) -> &RigidBodyState {
        self.quad.state()
    }

    /// A compact physical-state snapshot at the current time.
    pub fn physical_state(&self) -> PhysicalState {
        let s = self.quad.state();
        PhysicalState {
            time: self.time,
            position: s.position,
            velocity: s.velocity,
            acceleration: s.acceleration,
            heading: s.attitude.yaw(),
            on_ground: self.quad.on_ground(),
        }
    }

    /// Captures the simulator's complete state so a later run can resume
    /// from this exact point (see [`SimSnapshot`]).
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot { sim: self.clone() }
    }

    /// Repositions the vehicle (scenario setup / tests only).
    pub fn set_true_state(&mut self, state: RigidBodyState) {
        self.was_airborne = state.position.z > 0.05;
        self.quad.set_state(state);
    }

    /// Advances the simulation by one fixed time-step with the given motor
    /// commands, returning the new state, the sensor samples and any
    /// collision detected.
    ///
    /// Allocates a fresh [`StepOutput`] per call; hot loops should hold
    /// one buffer and call [`Simulator::step_into`] instead.
    pub fn step(&mut self, commands: &MotorCommands) -> StepOutput {
        let mut output = StepOutput::empty();
        self.step_into(commands, &mut output);
        output
    }

    /// Advances the simulation by one fixed time-step, writing the result
    /// into `output`. The `readings` and `violated_fences` buffers are
    /// cleared and refilled in place, so a buffer reused across steps
    /// reaches its steady-state capacity after the first step and the
    /// loop performs no further heap allocations.
    pub fn step_into(&mut self, commands: &MotorCommands, output: &mut StepOutput) {
        let dt = self.config.dt;
        let wind = self.env.wind().at(self.time);
        let airborne_before = !self.quad.on_ground();
        self.was_airborne = self.was_airborne || airborne_before;

        let commands = if self.first_collision.is_some() {
            // After a crash the airframe is destroyed; motors stop.
            self.quad.cut_motors();
            MotorCommands::IDLE
        } else {
            *commands
        };

        // Preserve the velocity of the incoming trajectory: the collision
        // check needs the impact velocity, which the ground-contact clamp in
        // the dynamics would otherwise zero out.
        let pre_step_velocity = self.quad.state().velocity;
        let new_state = self.quad.step(&commands, wind, dt);
        self.time += dt;
        self.steps += 1;

        let impact_velocity = if new_state.position.z <= 1e-9 && airborne_before {
            pre_step_velocity
        } else {
            new_state.velocity
        };
        let collision =
            self.env
                .check_collision(new_state.position, impact_velocity, self.was_airborne);
        if let Some(c) = collision {
            if self.first_collision.is_none() {
                self.first_collision = Some(c);
            }
            self.quad.cut_motors();
        }
        if new_state.position.z <= 1e-9 {
            // Back on the ground: require becoming airborne again before the
            // next ground impact can be reported.
            self.was_airborne = false;
        }

        output.readings.clear();
        self.sensors.sample_into(
            &mut output.readings,
            self.quad.state(),
            commands.mean(),
            self.time,
            dt,
        );
        output.violated_fences.clear();
        self.env
            .violated_fences_into(new_state.position, &mut output.violated_fences);
        output.state = self.physical_state();
        output.collision = collision;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::CollisionKind;
    use crate::vehicle::MotorCommands;

    #[test]
    fn simulator_advances_time() {
        let mut sim = Simulator::with_defaults();
        for _ in 0..100 {
            sim.step(&MotorCommands::IDLE);
        }
        assert!((sim.time() - 0.1).abs() < 1e-9);
        assert_eq!(sim.steps(), 100);
    }

    #[test]
    fn idle_on_ground_never_collides() {
        let mut sim = Simulator::with_defaults();
        for _ in 0..1000 {
            let out = sim.step(&MotorCommands::IDLE);
            assert!(out.collision.is_none());
            assert!(out.state.on_ground);
        }
        assert!(sim.first_collision().is_none());
    }

    #[test]
    fn climb_then_free_fall_crashes() {
        let mut sim = Simulator::with_defaults();
        // Climb hard for 4 seconds.
        for _ in 0..4000 {
            sim.step(&MotorCommands::uniform(0.9));
        }
        assert!(sim.physical_state().position.z > 5.0);
        // Cut power and fall.
        let mut crashed = false;
        for _ in 0..10_000 {
            let out = sim.step(&MotorCommands::IDLE);
            if let Some(c) = out.collision {
                assert_eq!(c.kind, CollisionKind::Ground);
                assert!(c.impact_speed >= 2.0);
                crashed = true;
                break;
            }
        }
        assert!(crashed, "expected a ground crash");
        assert!(sim.first_collision().is_some());
    }

    #[test]
    fn after_crash_motors_are_dead() {
        let mut sim = Simulator::with_defaults();
        for _ in 0..4000 {
            sim.step(&MotorCommands::uniform(0.9));
        }
        for _ in 0..10_000 {
            if sim.step(&MotorCommands::IDLE).collision.is_some() {
                break;
            }
        }
        assert!(sim.first_collision().is_some());
        // Commanding full throttle after the crash must not lift the wreck.
        for _ in 0..3000 {
            sim.step(&MotorCommands::uniform(1.0));
        }
        assert!(sim.physical_state().position.z < 0.5);
    }

    #[test]
    fn step_reports_sensor_readings() {
        let mut sim = Simulator::with_defaults();
        let out = sim.step(&MotorCommands::IDLE);
        assert_eq!(
            out.readings.len(),
            SensorSuiteConfig::iris().total_instances()
        );
    }

    #[test]
    fn fence_violations_reported() {
        use crate::environment::{Fence, FenceRegion};
        let env = Environment::open_field().with_fence(Fence::containment(FenceRegion::Circle {
            center: Vec3::ZERO,
            radius: 1000.0,
        }));
        let mut sim = Simulator::new(SimConfig::default(), env);
        let out = sim.step(&MotorCommands::IDLE);
        assert!(out.violated_fences.is_empty());
    }

    #[test]
    fn deterministic_given_seed_and_commands() {
        let run = || {
            let mut sim = Simulator::new(
                SimConfig {
                    seed: 5,
                    ..Default::default()
                },
                Environment::open_field(),
            );
            let mut last = None;
            for i in 0..2000 {
                let throttle = if i < 1500 { 0.8 } else { 0.3 };
                last = Some(sim.step(&MotorCommands::uniform(throttle)));
            }
            last.unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.state, b.state);
        assert_eq!(a.readings, b.readings);
    }

    #[test]
    #[should_panic(expected = "dt must be")]
    fn rejects_invalid_dt() {
        let config = SimConfig {
            dt: 0.0,
            ..Default::default()
        };
        let _ = Simulator::new(config, Environment::open_field());
    }
}
