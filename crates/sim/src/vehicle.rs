//! Rigid-body quadcopter model: parameters, motor dynamics and the
//! force/torque mixer.
//!
//! The model is intentionally simple but physically grounded: four motors
//! in an "X" configuration produce thrust along the body z-axis and
//! torques about all three axes; linear and angular drag oppose motion;
//! gravity acts in the world frame. This is the substrate that stands in
//! for Gazebo in the paper's evaluation — the checker only observes
//! position, acceleration and attitude, all of which this model produces.

use crate::math::{clamp, Quat, Vec3};
use serde::{Deserialize, Serialize};

/// Standard gravitational acceleration (m/s²).
pub const GRAVITY: f64 = 9.80665;

/// Number of motors on the simulated quadcopter.
pub const MOTOR_COUNT: usize = 4;

/// Physical parameters of the simulated quadcopter.
///
/// Defaults approximate the 3DR Iris used in the paper's evaluation
/// (≈1.5 kg all-up weight, ~0.25 m arm length).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Vehicle mass in kilograms.
    pub mass: f64,
    /// Moment of inertia about the body x/y axes (kg·m²).
    pub inertia_xy: f64,
    /// Moment of inertia about the body z axis (kg·m²).
    pub inertia_z: f64,
    /// Distance from the centre of mass to each motor (m).
    pub arm_length: f64,
    /// Maximum thrust of a single motor at full command (N).
    pub max_motor_thrust: f64,
    /// Yaw torque produced per newton of motor thrust (N·m/N).
    pub yaw_torque_coefficient: f64,
    /// First-order motor time constant (s).
    pub motor_time_constant: f64,
    /// Linear drag coefficient (N per m/s).
    pub linear_drag: f64,
    /// Angular drag coefficient (N·m per rad/s).
    pub angular_drag: f64,
}

impl Default for VehicleParams {
    fn default() -> Self {
        VehicleParams {
            mass: 1.5,
            inertia_xy: 0.029,
            inertia_z: 0.055,
            arm_length: 0.25,
            // Hover at ~38% throttle: 4 * 9.8 N = 39.2 N total.
            max_motor_thrust: 9.8,
            yaw_torque_coefficient: 0.016,
            motor_time_constant: 0.02,
            linear_drag: 0.3,
            angular_drag: 0.02,
        }
    }
}

impl VehicleParams {
    /// Total thrust (N) needed to hover.
    pub fn hover_thrust(&self) -> f64 {
        self.mass * GRAVITY
    }

    /// Per-motor command (0..1) that produces hover thrust.
    pub fn hover_throttle(&self) -> f64 {
        self.hover_thrust() / (MOTOR_COUNT as f64 * self.max_motor_thrust)
    }
}

/// Commanded throttle for each motor, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MotorCommands {
    /// Per-motor throttle commands in X-configuration order:
    /// front-right, back-left, front-left, back-right.
    pub throttle: [f64; MOTOR_COUNT],
}

impl MotorCommands {
    /// All motors at zero throttle.
    pub const IDLE: MotorCommands = MotorCommands {
        throttle: [0.0; MOTOR_COUNT],
    };

    /// Creates commands with every motor at the same throttle.
    pub fn uniform(throttle: f64) -> Self {
        MotorCommands {
            throttle: [clamp(throttle, 0.0, 1.0); MOTOR_COUNT],
        }
    }

    /// Creates motor commands from collective throttle plus roll, pitch and
    /// yaw differential terms. This is the standard "X" mixer.
    ///
    /// All inputs are dimensionless; the output is clamped to `[0, 1]`.
    pub fn mix(throttle: f64, roll: f64, pitch: f64, yaw: f64) -> Self {
        // X configuration, motor order: FR, BL, FL, BR.
        // FR spins CW, BL spins CW, FL spins CCW, BR spins CCW.
        let m = [
            throttle - roll + pitch + yaw, // front-right
            throttle + roll - pitch + yaw, // back-left
            throttle + roll + pitch - yaw, // front-left
            throttle - roll - pitch - yaw, // back-right
        ];
        MotorCommands {
            throttle: m.map(|v| clamp(v, 0.0, 1.0)),
        }
    }

    /// Returns the mean commanded throttle.
    pub fn mean(&self) -> f64 {
        self.throttle.iter().sum::<f64>() / MOTOR_COUNT as f64
    }

    /// Returns `true` if every command is finite and within `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        self.throttle
            .iter()
            .all(|t| t.is_finite() && (0.0..=1.0).contains(t))
    }
}

/// First-order motor dynamics: the realized thrust lags the command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotorBank {
    /// Current realized throttle of each motor (0..1).
    pub(crate) realized: [f64; MOTOR_COUNT],
    pub(crate) time_constant: f64,
}

impl MotorBank {
    /// Creates a motor bank at rest.
    pub fn new(time_constant: f64) -> Self {
        MotorBank {
            realized: [0.0; MOTOR_COUNT],
            time_constant: time_constant.max(1e-4),
        }
    }

    /// Advances the motor dynamics by `dt` seconds toward `commands`.
    pub fn step(&mut self, commands: &MotorCommands, dt: f64) {
        let alpha = clamp(dt / self.time_constant, 0.0, 1.0);
        for i in 0..MOTOR_COUNT {
            let target = clamp(commands.throttle[i], 0.0, 1.0);
            self.realized[i] += (target - self.realized[i]) * alpha;
        }
    }

    /// Realized throttle of each motor.
    pub fn realized(&self) -> [f64; MOTOR_COUNT] {
        self.realized
    }

    /// Immediately stops all motors (e.g. on disarm or crash).
    pub fn cut(&mut self) {
        self.realized = [0.0; MOTOR_COUNT];
    }
}

/// Instantaneous rigid-body state of the vehicle in the world (ENU) frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RigidBodyState {
    /// Position (m). `z` is altitude above ground level.
    pub position: Vec3,
    /// Velocity (m/s).
    pub velocity: Vec3,
    /// Most recent linear acceleration (m/s²), including gravity reaction.
    pub acceleration: Vec3,
    /// Attitude (body → world).
    pub attitude: Quat,
    /// Body-frame angular velocity (rad/s).
    pub angular_velocity: Vec3,
}

impl Default for RigidBodyState {
    fn default() -> Self {
        RigidBodyState {
            position: Vec3::ZERO,
            velocity: Vec3::ZERO,
            acceleration: Vec3::ZERO,
            attitude: Quat::IDENTITY,
            angular_velocity: Vec3::ZERO,
        }
    }
}

impl RigidBodyState {
    /// Returns a state at rest at the given position.
    pub fn at_rest(position: Vec3) -> Self {
        RigidBodyState {
            position,
            ..Default::default()
        }
    }

    /// Altitude above ground level (m).
    pub fn altitude(&self) -> f64 {
        self.position.z
    }

    /// Returns `true` if all state components are finite.
    pub fn is_finite(&self) -> bool {
        self.position.is_finite()
            && self.velocity.is_finite()
            && self.acceleration.is_finite()
            && self.attitude.is_finite()
            && self.angular_velocity.is_finite()
    }
}

/// The rigid-body quadcopter: parameters, motors and dynamic state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quadcopter {
    pub(crate) params: VehicleParams,
    pub(crate) motors: MotorBank,
    pub(crate) state: RigidBodyState,
    pub(crate) on_ground: bool,
}

/// The per-run *mutable* slice of a [`Quadcopter`]: motor spool-up state,
/// rigid-body state and ground contact. The physical parameters are
/// static per run and excluded, so a delta-encoded snapshot chain stores
/// them once in its base keyframe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuadDynamics {
    motors: MotorBank,
    state: RigidBodyState,
    on_ground: bool,
}

impl QuadDynamics {
    /// Serialises the dynamics (bit-exact) for the persistent store.
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        for throttle in &self.motors.realized {
            w.f64(*throttle);
        }
        w.f64(self.motors.time_constant);
        self.state.position.encode(w);
        self.state.velocity.encode(w);
        self.state.acceleration.encode(w);
        self.state.attitude.encode(w);
        self.state.angular_velocity.encode(w);
        w.bool(self.on_ground);
    }

    /// Restores dynamics serialised by [`QuadDynamics::encode`].
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> crate::codec::CodecResult<QuadDynamics> {
        let mut realized = [0.0; MOTOR_COUNT];
        for throttle in &mut realized {
            *throttle = r.f64()?;
        }
        let time_constant = r.f64()?;
        Ok(QuadDynamics {
            motors: MotorBank {
                realized,
                time_constant,
            },
            state: RigidBodyState {
                position: Vec3::decode(r)?,
                velocity: Vec3::decode(r)?,
                acceleration: Vec3::decode(r)?,
                attitude: Quat::decode(r)?,
                angular_velocity: Vec3::decode(r)?,
            },
            on_ground: r.bool()?,
        })
    }
}

impl Quadcopter {
    /// Creates a quadcopter resting on the ground at the origin.
    pub fn new(params: VehicleParams) -> Self {
        let motors = MotorBank::new(params.motor_time_constant);
        Quadcopter {
            params,
            motors,
            state: RigidBodyState::default(),
            on_ground: true,
        }
    }

    /// The vehicle's physical parameters.
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// Current rigid body state.
    pub fn state(&self) -> &RigidBodyState {
        &self.state
    }

    /// Whether the vehicle is resting on the ground.
    pub fn on_ground(&self) -> bool {
        self.on_ground
    }

    /// Overwrites the rigid body state (used by tests and scenario setup).
    pub fn set_state(&mut self, state: RigidBodyState) {
        self.on_ground = state.position.z <= 1e-6;
        self.state = state;
    }

    /// Captures the per-run dynamic state (see [`QuadDynamics`]).
    pub fn dynamics(&self) -> QuadDynamics {
        QuadDynamics {
            motors: self.motors.clone(),
            state: self.state,
            on_ground: self.on_ground,
        }
    }

    /// Overwrites the per-run dynamic state captured by
    /// [`Quadcopter::dynamics`]. Only valid between vehicles of the same
    /// run (identical parameters).
    pub fn restore_dynamics(&mut self, dynamics: &QuadDynamics) {
        self.motors = dynamics.motors.clone();
        self.state = dynamics.state;
        self.on_ground = dynamics.on_ground;
    }

    /// Advances the dynamics by `dt` seconds with the given motor commands
    /// and world-frame wind velocity. Returns the new state.
    ///
    /// Ground contact is modeled as a hard constraint at `z = 0`: the
    /// vehicle cannot descend below the ground plane. The impact speed at
    /// ground contact is reported by the caller's collision checker.
    pub fn step(&mut self, commands: &MotorCommands, wind: Vec3, dt: f64) -> RigidBodyState {
        debug_assert!(dt > 0.0, "time step must be positive");
        self.motors.step(commands, dt);
        let realized = self.motors.realized();

        // Per-motor thrust (N).
        let thrusts: [f64; MOTOR_COUNT] = realized.map(|t| t * self.params.max_motor_thrust);
        let total_thrust: f64 = thrusts.iter().sum();

        // Torques from the X mixer geometry. Motor order: FR, BL, FL, BR.
        let l = self.params.arm_length * std::f64::consts::FRAC_1_SQRT_2;
        let roll_torque = l * (thrusts[1] + thrusts[2] - thrusts[0] - thrusts[3]);
        let pitch_torque = l * (thrusts[0] + thrusts[2] - thrusts[1] - thrusts[3]);
        let yaw_torque = self.params.yaw_torque_coefficient
            * (thrusts[0] + thrusts[1] - thrusts[2] - thrusts[3]);

        // Angular dynamics (body frame, diagonal inertia).
        let torque = Vec3::new(roll_torque, pitch_torque, yaw_torque)
            - self.state.angular_velocity * self.params.angular_drag;
        let angular_accel = Vec3::new(
            torque.x / self.params.inertia_xy,
            torque.y / self.params.inertia_xy,
            torque.z / self.params.inertia_z,
        );
        let mut omega = self.state.angular_velocity + angular_accel * dt;
        let mut attitude = self.state.attitude.integrate(omega, dt);

        // Linear dynamics (world frame).
        let thrust_world = attitude.rotate(Vec3::new(0.0, 0.0, total_thrust));
        let air_velocity = self.state.velocity - wind;
        let drag = -air_velocity * self.params.linear_drag;
        let gravity = Vec3::new(0.0, 0.0, -GRAVITY * self.params.mass);
        let force = thrust_world + drag + gravity;
        let mut accel = force / self.params.mass;

        let mut velocity = self.state.velocity + accel * dt;
        let mut position = self.state.position + velocity * dt;

        // Ground contact.
        if position.z <= 0.0 {
            position.z = 0.0;
            if velocity.z < 0.0 {
                velocity = Vec3::new(0.0, 0.0, 0.0);
                omega = Vec3::ZERO;
            }
            self.on_ground = true;
            // On the ground the airframe cannot pitch/roll into the terrain;
            // damp attitude back toward level while keeping heading.
            let yaw = attitude.yaw();
            attitude = Quat::from_euler(0.0, 0.0, yaw);
            if total_thrust <= self.params.hover_thrust() {
                accel = Vec3::ZERO;
            }
        } else {
            self.on_ground = false;
        }

        self.state = RigidBodyState {
            position,
            velocity,
            acceleration: accel,
            attitude,
            angular_velocity: omega,
        };
        debug_assert!(
            self.state.is_finite(),
            "dynamics diverged: {:?}",
            self.state
        );
        self.state
    }

    /// Cuts motor output immediately (disarm / crash).
    pub fn cut_motors(&mut self) {
        self.motors.cut();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hover_commands(params: &VehicleParams) -> MotorCommands {
        MotorCommands::uniform(params.hover_throttle())
    }

    #[test]
    fn hover_throttle_balances_gravity() {
        let params = VehicleParams::default();
        let t = params.hover_throttle();
        assert!(t > 0.0 && t < 1.0);
        let total = t * MOTOR_COUNT as f64 * params.max_motor_thrust;
        assert!((total - params.hover_thrust()).abs() < 1e-9);
    }

    #[test]
    fn resting_on_ground_stays_put_without_thrust() {
        let mut quad = Quadcopter::new(VehicleParams::default());
        for _ in 0..1000 {
            quad.step(&MotorCommands::IDLE, Vec3::ZERO, 0.001);
        }
        assert!(quad.on_ground());
        assert!(quad.state().position.norm() < 1e-6);
    }

    #[test]
    fn full_throttle_climbs() {
        let mut quad = Quadcopter::new(VehicleParams::default());
        for _ in 0..2000 {
            quad.step(&MotorCommands::uniform(0.9), Vec3::ZERO, 0.001);
        }
        assert!(!quad.on_ground());
        assert!(
            quad.state().position.z > 1.0,
            "alt = {}",
            quad.state().position.z
        );
        assert!(quad.state().velocity.z > 0.0);
    }

    #[test]
    fn hover_roughly_holds_altitude_after_reaching_it() {
        let params = VehicleParams::default();
        let mut quad = Quadcopter::new(params.clone());
        // Climb for two seconds, then hover.
        for _ in 0..2000 {
            quad.step(&MotorCommands::uniform(0.7), Vec3::ZERO, 0.001);
        }
        let alt_after_climb = quad.state().position.z;
        // With exact hover throttle, drag damps vertical speed; altitude
        // should not change dramatically over the next second.
        for _ in 0..1000 {
            quad.step(&hover_commands(&params), Vec3::ZERO, 0.001);
        }
        let alt_final = quad.state().position.z;
        assert!(alt_final > alt_after_climb * 0.8);
    }

    #[test]
    fn differential_thrust_produces_roll() {
        let mut quad = Quadcopter::new(VehicleParams::default());
        // Lift off first.
        for _ in 0..1500 {
            quad.step(&MotorCommands::uniform(0.8), Vec3::ZERO, 0.001);
        }
        // Apply a roll command.
        let cmd = MotorCommands::mix(0.5, 0.2, 0.0, 0.0);
        for _ in 0..200 {
            quad.step(&cmd, Vec3::ZERO, 0.001);
        }
        let (roll, _, _) = quad.state().attitude.to_euler();
        assert!(roll.abs() > 0.01, "roll = {roll}");
    }

    #[test]
    fn yaw_command_produces_heading_change() {
        let mut quad = Quadcopter::new(VehicleParams::default());
        for _ in 0..1500 {
            quad.step(&MotorCommands::uniform(0.8), Vec3::ZERO, 0.001);
        }
        let yaw_before = quad.state().attitude.yaw();
        let cmd = MotorCommands::mix(0.5, 0.0, 0.0, 0.3);
        for _ in 0..500 {
            quad.step(&cmd, Vec3::ZERO, 0.001);
        }
        let yaw_after = quad.state().attitude.yaw();
        assert!((yaw_after - yaw_before).abs() > 0.05);
    }

    #[test]
    fn wind_pushes_vehicle_downwind() {
        let params = VehicleParams::default();
        let mut quad = Quadcopter::new(params.clone());
        for _ in 0..1500 {
            quad.step(&MotorCommands::uniform(0.8), Vec3::ZERO, 0.001);
        }
        let x_before = quad.state().position.x;
        let wind = Vec3::new(8.0, 0.0, 0.0);
        for _ in 0..2000 {
            quad.step(&hover_commands(&params), wind, 0.001);
        }
        assert!(quad.state().position.x > x_before + 0.5);
    }

    #[test]
    fn mixer_clamps_to_unit_interval() {
        let cmd = MotorCommands::mix(1.5, 1.0, -1.0, 0.5);
        assert!(cmd.is_valid());
        let cmd = MotorCommands::mix(-1.0, 0.0, 0.0, 0.0);
        assert!(cmd.is_valid());
        assert_eq!(cmd.mean(), 0.0);
    }

    #[test]
    fn motor_bank_lags_command() {
        let mut bank = MotorBank::new(0.05);
        bank.step(&MotorCommands::uniform(1.0), 0.001);
        let first = bank.realized()[0];
        assert!(first > 0.0 && first < 0.1);
        for _ in 0..1000 {
            bank.step(&MotorCommands::uniform(1.0), 0.001);
        }
        assert!(bank.realized()[0] > 0.99);
        bank.cut();
        assert_eq!(bank.realized(), [0.0; MOTOR_COUNT]);
    }

    #[test]
    fn set_state_updates_on_ground_flag() {
        let mut quad = Quadcopter::new(VehicleParams::default());
        let mut s = RigidBodyState::at_rest(Vec3::new(0.0, 0.0, 10.0));
        quad.set_state(s);
        assert!(!quad.on_ground());
        s.position.z = 0.0;
        quad.set_state(s);
        assert!(quad.on_ground());
    }
}
