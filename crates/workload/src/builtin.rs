//! The default workloads described in §V.A of the paper.
//!
//! 1. A "manual" box survey: ascend to 20 m, hold position, fly the
//!    perimeter of a 20 m × 20 m box with guided repositions, and land at
//!    the launch point. Position hold subsumes the orientation- and
//!    altitude-holding manual modes, so testing it also exercises them.
//! 2. An autonomous waypoint mission over the same box, uploaded through
//!    the mission protocol and flown in Auto mode.
//! 3. A geofenced variant of the waypoint mission: the environment carries
//!    a restricted-airspace fence adjacent to the route, exercising the
//!    fence-checking path without requiring avoidance manoeuvres. (The
//!    paper's fence overlaps the route; our firmware substrate does not
//!    implement automatic fence avoidance, so the fence is placed adjacent
//!    — the substitution is documented in DESIGN.md.)

use crate::script::{ScriptedWorkload, WorkloadBuilder};
use avis_mavlite::{square_mission, ProtocolMode};
use avis_sim::{Environment, Fence, FenceRegion, Vec3};

/// Default mission / survey altitude used by the built-in workloads (m).
pub const DEFAULT_ALTITUDE: f64 = 20.0;
/// Side length of the survey box (m).
pub const BOX_SIDE: f64 = 20.0;

/// Workload 1: a box survey flown with "manual" modes (guided repositions
/// plus a position hold), then a landing at the launch point.
pub fn manual_box_survey() -> ScriptedWorkload {
    WorkloadBuilder::new("manual-box-survey")
        .step_timeout(90.0)
        .wait_time(2.0)
        .arm_system_completely()
        .set_mode(ProtocolMode::Guided)
        .takeoff(DEFAULT_ALTITUDE)
        .wait_altitude_above(DEFAULT_ALTITUDE - 1.5)
        .set_mode(ProtocolMode::PosHold)
        .wait_time(3.0)
        .set_mode(ProtocolMode::Guided)
        .goto_and_wait(BOX_SIDE, 0.0, DEFAULT_ALTITUDE, 2.5)
        .goto_and_wait(BOX_SIDE, BOX_SIDE, DEFAULT_ALTITUDE, 2.5)
        .goto_and_wait(0.0, BOX_SIDE, DEFAULT_ALTITUDE, 2.5)
        .goto_and_wait(0.0, 0.0, DEFAULT_ALTITUDE, 2.5)
        .set_mode(ProtocolMode::Land)
        .wait_altitude_below(0.5)
        .wait_disarmed()
        .pass_test()
        .build()
}

/// Workload 2: the autonomous waypoint-box mission (Figure 8 style):
/// upload, arm, enter auto mode, wait for the climb, wait for the landing.
pub fn auto_box_mission() -> ScriptedWorkload {
    WorkloadBuilder::new("auto-box-mission")
        .step_timeout(120.0)
        .wait_time(2.0)
        .upload_mission(square_mission(DEFAULT_ALTITUDE, BOX_SIDE, true))
        .arm_system_completely()
        .enter_auto_mode()
        .wait_altitude_above(DEFAULT_ALTITUDE - 1.5)
        .wait_altitude_below(0.5)
        .wait_disarmed()
        .pass_test()
        .build()
}

/// Workload 3: the waypoint mission flown next to restricted airspace and
/// ending with a return-to-launch instead of a straight landing.
pub fn fence_box_mission() -> ScriptedWorkload {
    let fence = Fence::exclusion(FenceRegion::Circle {
        center: Vec3::new(BOX_SIDE * 2.5, BOX_SIDE * 0.5, 0.0),
        radius: BOX_SIDE * 0.75,
    });
    let environment = Environment::open_field().with_fence(fence);
    WorkloadBuilder::new("fence-box-mission")
        .environment(environment)
        .step_timeout(150.0)
        .wait_time(2.0)
        .upload_mission(square_mission(DEFAULT_ALTITUDE, BOX_SIDE, false))
        .arm_system_completely()
        .enter_auto_mode()
        .wait_altitude_above(DEFAULT_ALTITUDE - 1.5)
        .wait_altitude_below(0.5)
        .wait_disarmed()
        .pass_test()
        .build()
}

/// The default workload set used by the checker (paper §V.A provides two
/// defaults; we also ship the geofenced variant).
pub fn default_workloads() -> Vec<ScriptedWorkload> {
    vec![auto_box_mission(), manual_box_survey()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::WorkloadStep;

    #[test]
    fn default_workloads_are_the_two_from_the_paper() {
        let defaults = default_workloads();
        assert_eq!(defaults.len(), 2);
        assert_eq!(defaults[0].name(), "auto-box-mission");
        assert_eq!(defaults[1].name(), "manual-box-survey");
    }

    #[test]
    fn auto_mission_contains_upload_and_auto_mode() {
        let w = auto_box_mission();
        assert!(w
            .steps()
            .iter()
            .any(|s| matches!(s, WorkloadStep::UploadMission { items } if items.len() == 6)));
        assert!(w.steps().iter().any(|s| matches!(
            s,
            WorkloadStep::SetMode {
                mode: ProtocolMode::Auto
            }
        )));
        assert!(w.environment().fences().is_empty());
    }

    #[test]
    fn manual_survey_uses_guided_and_poshold() {
        let w = manual_box_survey();
        let gotos = w
            .steps()
            .iter()
            .filter(|s| matches!(s, WorkloadStep::GotoAndWait { .. }))
            .count();
        assert_eq!(gotos, 4, "the survey flies the four corners of the box");
        assert!(w.steps().iter().any(|s| matches!(
            s,
            WorkloadStep::SetMode {
                mode: ProtocolMode::PosHold
            }
        )));
        assert!(w.steps().iter().any(|s| matches!(
            s,
            WorkloadStep::SetMode {
                mode: ProtocolMode::Land
            }
        )));
    }

    #[test]
    fn fence_mission_has_restricted_airspace() {
        let w = fence_box_mission();
        assert_eq!(w.environment().fences().len(), 1);
        assert!(w.environment().fences()[0].exclusion);
        // The fence must not overlap the mission box (no false violations
        // in a fault-free flight).
        for corner in [
            Vec3::new(0.0, 0.0, DEFAULT_ALTITUDE),
            Vec3::new(BOX_SIDE, 0.0, DEFAULT_ALTITUDE),
            Vec3::new(BOX_SIDE, BOX_SIDE, DEFAULT_ALTITUDE),
            Vec3::new(0.0, BOX_SIDE, DEFAULT_ALTITUDE),
        ] {
            assert!(w.environment().violated_fences(corner).is_empty());
        }
    }
}
