//! # avis-workload
//!
//! The workload framework and default workloads of the Avis reproduction.
//!
//! A *workload* is a sequence of pilot commands sent to the vehicle over
//! the MAVLite protocol (§IV.A). The paper provides a high-level framework
//! so test authors do not have to hand-write MAVLink transactions, plus
//! two default workloads that exercise the common commands (takeoff,
//! fly-to-waypoint, land) and are shown to be effective at triggering
//! bugs. This crate mirrors that design:
//!
//! - [`ScriptedWorkload`] — a step-scripted workload built with
//!   [`WorkloadBuilder`], mirroring the paper's Figure 8 API
//!   (`wait_time`, `upload_mission`, `arm_system_completely`,
//!   `enter_auto_mode`, `wait_altitude`, `pass_test`);
//! - [`builtin`] — the default workloads: an auto waypoint-box mission, a
//!   box survey flown with guided / position-hold "manual" modes, and a
//!   geofenced waypoint variant.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builtin;
pub mod script;

pub use builtin::{auto_box_mission, default_workloads, fence_box_mission, manual_box_survey};
pub use script::{ScriptedWorkload, WorkloadBuilder, WorkloadStatus, WorkloadStep};
