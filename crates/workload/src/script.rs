//! The scripted-workload framework.
//!
//! A [`ScriptedWorkload`] is a sequence of [`WorkloadStep`]s executed in
//! lock-step with the simulation: every simulation step the workload is
//! ticked with the vehicle's telemetry messages and returns the commands
//! it wants to send. This is the in-process equivalent of the paper's
//! Python framework, where each high-level call (e.g. `wait_altitude`)
//! internally yields to the checker through the `step()` RPC.

use avis_mavlite::{Message, MissionItem, MissionUploader, ProtocolMode, UploadState};
use avis_sim::codec::{ByteReader, ByteWriter, CodecError, CodecResult};
use avis_sim::Environment;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Result of ticking a workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadStatus {
    /// The workload has more steps to run.
    Running,
    /// The workload completed (`pass_test()` reached).
    Passed,
    /// The workload gave up (a step timed out or a protocol error occurred).
    Failed(String),
}

impl WorkloadStatus {
    /// Whether the workload has finished (passed or failed).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, WorkloadStatus::Running)
    }

    /// Serialise the status as a stable one-byte tag (plus the failure
    /// reason for [`WorkloadStatus::Failed`]).
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            WorkloadStatus::Running => w.u8(0),
            WorkloadStatus::Passed => w.u8(1),
            WorkloadStatus::Failed(why) => {
                w.u8(2);
                w.str(why);
            }
        }
    }

    /// Decode a status previously written by [`WorkloadStatus::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<WorkloadStatus> {
        Ok(match r.u8()? {
            0 => WorkloadStatus::Running,
            1 => WorkloadStatus::Passed,
            2 => WorkloadStatus::Failed(r.str()?),
            _ => return Err(CodecError::Malformed("workload status tag")),
        })
    }
}

impl fmt::Display for WorkloadStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadStatus::Running => f.write_str("running"),
            WorkloadStatus::Passed => f.write_str("passed"),
            WorkloadStatus::Failed(why) => write!(f, "failed: {why}"),
        }
    }
}

/// One step of a scripted workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadStep {
    /// Wait for a fixed amount of simulated time.
    WaitTime {
        /// Seconds to wait.
        seconds: f64,
    },
    /// Upload a mission through the vehicle-driven handshake.
    UploadMission {
        /// The mission items.
        items: Vec<MissionItem>,
    },
    /// Arm the vehicle and wait for the acknowledgement.
    Arm,
    /// Request a mode change and wait for the acknowledgement.
    SetMode {
        /// The requested protocol mode.
        mode: ProtocolMode,
    },
    /// Send a guided-mode takeoff command.
    Takeoff {
        /// Target altitude (m).
        altitude: f64,
    },
    /// Send a guided-mode reposition and wait until the vehicle is within
    /// `tolerance` metres horizontally (and 2 m vertically) of the target.
    GotoAndWait {
        /// Target east coordinate (m).
        x: f64,
        /// Target north coordinate (m).
        y: f64,
        /// Target altitude (m).
        z: f64,
        /// Horizontal acceptance radius (m).
        tolerance: f64,
    },
    /// Wait until the reported altitude rises above a threshold.
    WaitAltitudeAbove {
        /// Altitude threshold (m).
        altitude: f64,
    },
    /// Wait until the reported altitude falls below a threshold.
    WaitAltitudeBelow {
        /// Altitude threshold (m).
        altitude: f64,
    },
    /// Wait until the vehicle reports being landed (and, implicitly, the
    /// mission finished).
    WaitLanded,
    /// Wait until the vehicle reports being disarmed.
    WaitDisarmed,
    /// Mark the test as passed.
    PassTest,
}

/// Latest telemetry the workload has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct SeenTelemetry {
    altitude: f64,
    x: f64,
    y: f64,
    landed: bool,
    armed: bool,
    have_status: bool,
    have_heartbeat: bool,
}

/// A scripted workload (cloneable so the checker can re-run it).
///
/// The immutable script — name, steps, environment — is shared behind
/// `Arc`s, so [`ScriptedWorkload::fresh`] (called once per test run) only
/// resets the runtime state instead of deep-cloning the mission items and
/// environment geometry.
#[derive(Debug, Clone)]
pub struct ScriptedWorkload {
    name: Arc<str>,
    steps: Arc<[WorkloadStep]>,
    environment: Arc<Environment>,
    step_timeout: f64,
    // runtime state
    index: usize,
    step_started: Option<f64>,
    status: WorkloadStatus,
    telemetry: SeenTelemetry,
    uploader: Option<MissionUploader>,
    sent_command: bool,
    waiting_ack: bool,
}

impl ScriptedWorkload {
    fn new(
        name: String,
        steps: Vec<WorkloadStep>,
        environment: Environment,
        step_timeout: f64,
    ) -> Self {
        ScriptedWorkload {
            name: name.into(),
            steps: steps.into(),
            environment: Arc::new(environment),
            step_timeout,
            index: 0,
            step_started: None,
            status: WorkloadStatus::Running,
            telemetry: SeenTelemetry::default(),
            uploader: None,
            sent_command: false,
            waiting_ack: false,
        }
    }

    /// The workload's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The environment this workload is designed to fly in.
    pub fn environment(&self) -> &Environment {
        &self.environment
    }

    /// The shared environment handle (cloning it is O(1)); the runner
    /// hands this straight to the simulator so every run — and every
    /// snapshot a run records — shares one copy of the geometry.
    pub fn shared_environment(&self) -> Arc<Environment> {
        Arc::clone(&self.environment)
    }

    /// The scripted steps.
    pub fn steps(&self) -> &[WorkloadStep] {
        &self.steps
    }

    /// The current status.
    pub fn status(&self) -> &WorkloadStatus {
        &self.status
    }

    /// Returns a fresh copy with all runtime state cleared, ready for a
    /// new test run. The script itself (steps, environment, name) is
    /// shared, not cloned.
    pub fn fresh(&self) -> ScriptedWorkload {
        ScriptedWorkload {
            name: Arc::clone(&self.name),
            steps: Arc::clone(&self.steps),
            environment: Arc::clone(&self.environment),
            step_timeout: self.step_timeout,
            index: 0,
            step_started: None,
            status: WorkloadStatus::Running,
            telemetry: SeenTelemetry::default(),
            uploader: None,
            sent_command: false,
            waiting_ack: false,
        }
    }

    /// Serialise the runtime state — script progress, seen telemetry,
    /// in-flight upload handshake — bit-exactly. The immutable script
    /// (name, steps, environment, timeout) is *not* written: it is part
    /// of the experiment configuration, so a persisted chain rebuilds it
    /// from the config and re-attaches the runtime through
    /// [`ScriptedWorkload::decode_runtime`]. Mission items inside an
    /// in-flight upload ride through the mavlite wire codec
    /// ([`avis_mavlite::encode_frame`]), reusing the protocol's framing
    /// and CRC instead of a second item format.
    pub fn encode_runtime(&self, w: &mut ByteWriter) {
        w.usize(self.index);
        w.option(self.step_started.as_ref(), |w, t| w.f64(*t));
        self.status.encode(w);
        let t = &self.telemetry;
        w.f64(t.altitude);
        w.f64(t.x);
        w.f64(t.y);
        w.bool(t.landed);
        w.bool(t.armed);
        w.bool(t.have_status);
        w.bool(t.have_heartbeat);
        w.option(self.uploader.as_ref(), |w, uploader| {
            let parts = uploader.export_parts();
            w.seq(&parts.items, |w, item| {
                w.bytes(&avis_mavlite::encode_frame(
                    &Message::MissionItemMsg { item: *item },
                    0,
                ));
            });
            let state_tag: u8 = match parts.state {
                UploadState::NotStarted => 0,
                UploadState::InProgress => 1,
                UploadState::Accepted => 2,
                UploadState::Rejected => 3,
                UploadState::TimedOut => 4,
            };
            w.u8(state_tag);
            w.u64(parts.timeout_ticks);
            w.u64(parts.idle_ticks);
        });
        w.bool(self.sent_command);
        w.bool(self.waiting_ack);
    }

    /// Rebuilds a workload from a template (`self`, providing the shared
    /// immutable script) plus runtime state previously written by
    /// [`ScriptedWorkload::encode_runtime`].
    pub fn decode_runtime(&self, r: &mut ByteReader<'_>) -> CodecResult<ScriptedWorkload> {
        let mut workload = self.fresh();
        workload.index = r.usize()?;
        workload.step_started = r.option(|r| r.f64())?;
        workload.status = WorkloadStatus::decode(r)?;
        workload.telemetry = SeenTelemetry {
            altitude: r.f64()?,
            x: r.f64()?,
            y: r.f64()?,
            landed: r.bool()?,
            armed: r.bool()?,
            have_status: r.bool()?,
            have_heartbeat: r.bool()?,
        };
        workload.uploader = r.option(|r| {
            let items = r.seq(|r| {
                let frame = r.bytes()?;
                let (msg, _seq, used) = avis_mavlite::decode_frame(&frame)
                    .map_err(|_| CodecError::Malformed("uploader item frame"))?;
                if used != frame.len() {
                    return Err(CodecError::Malformed("uploader item frame length"));
                }
                match msg {
                    Message::MissionItemMsg { item } => Ok(item),
                    _ => Err(CodecError::Malformed("uploader item message")),
                }
            })?;
            let state = match r.u8()? {
                0 => UploadState::NotStarted,
                1 => UploadState::InProgress,
                2 => UploadState::Accepted,
                3 => UploadState::Rejected,
                4 => UploadState::TimedOut,
                _ => return Err(CodecError::Malformed("upload state tag")),
            };
            Ok(MissionUploader::from_parts(avis_mavlite::UploaderParts {
                items,
                state,
                timeout_ticks: r.u64()?,
                idle_ticks: r.u64()?,
            }))
        })?;
        workload.sent_command = r.bool()?;
        workload.waiting_ack = r.bool()?;
        Ok(workload)
    }

    fn absorb_telemetry(&mut self, incoming: &[Message]) {
        for msg in incoming {
            match *msg {
                Message::Status {
                    x,
                    y,
                    altitude,
                    landed,
                    ..
                } => {
                    self.telemetry.x = x;
                    self.telemetry.y = y;
                    self.telemetry.altitude = altitude;
                    self.telemetry.landed = landed;
                    self.telemetry.have_status = true;
                }
                Message::Heartbeat { armed, .. } => {
                    self.telemetry.armed = armed;
                    self.telemetry.have_heartbeat = true;
                }
                _ => {}
            }
        }
    }

    /// Advances the workload by one simulation step.
    ///
    /// `incoming` are the vehicle's messages since the previous tick; the
    /// return value is the messages the ground station sends this step plus
    /// the workload status.
    pub fn tick(&mut self, incoming: &[Message], time: f64) -> (Vec<Message>, WorkloadStatus) {
        self.absorb_telemetry(incoming);
        if self.status.is_terminal() {
            return (Vec::new(), self.status.clone());
        }
        let Some(step) = self.steps.get(self.index).cloned() else {
            // Ran out of steps without an explicit PassTest.
            self.status = WorkloadStatus::Passed;
            return (Vec::new(), self.status.clone());
        };
        let started = *self.step_started.get_or_insert(time);
        if time - started > self.step_timeout {
            self.status =
                WorkloadStatus::Failed(format!("step {} ({step:?}) timed out", self.index));
            return (Vec::new(), self.status.clone());
        }

        let mut outgoing = Vec::new();
        let mut done = false;
        match step {
            WorkloadStep::WaitTime { seconds } => {
                done = time - started >= seconds;
            }
            WorkloadStep::UploadMission { items } => {
                let uploader = self
                    .uploader
                    .get_or_insert_with(|| MissionUploader::new(items.clone(), 400_000));
                outgoing.extend(uploader.tick(incoming));
                match uploader.state() {
                    UploadState::Accepted => {
                        self.uploader = None;
                        done = true;
                    }
                    UploadState::Rejected | UploadState::TimedOut => {
                        self.status = WorkloadStatus::Failed("mission upload failed".to_string());
                        return (outgoing, self.status.clone());
                    }
                    _ => {}
                }
            }
            WorkloadStep::Arm => {
                if !self.sent_command {
                    outgoing.push(Message::ArmDisarm { arm: true });
                    self.sent_command = true;
                    self.waiting_ack = true;
                } else if incoming.iter().any(|m| {
                    matches!(
                        m,
                        Message::CommandAck {
                            command: avis_mavlite::CommandKind::Arm,
                            result: avis_mavlite::AckResult::Accepted
                        }
                    )
                }) {
                    done = true;
                } else if incoming.iter().any(|m| {
                    matches!(
                        m,
                        Message::CommandAck {
                            command: avis_mavlite::CommandKind::Arm,
                            result: avis_mavlite::AckResult::Rejected
                        }
                    )
                }) {
                    self.status = WorkloadStatus::Failed("arming rejected".to_string());
                    return (outgoing, self.status.clone());
                }
            }
            WorkloadStep::SetMode { mode } => {
                if !self.sent_command {
                    outgoing.push(Message::SetMode { mode });
                    self.sent_command = true;
                } else if incoming.iter().any(|m| {
                    matches!(
                        m,
                        Message::CommandAck {
                            command: avis_mavlite::CommandKind::SetMode,
                            ..
                        }
                    )
                }) {
                    // Mode rejections are surfaced by later waits timing out;
                    // matching the paper's framework, the step itself only
                    // waits for the acknowledgement.
                    done = true;
                }
            }
            WorkloadStep::Takeoff { altitude } => {
                if !self.sent_command {
                    outgoing.push(Message::CommandTakeoff { altitude });
                    self.sent_command = true;
                } else if incoming.iter().any(|m| {
                    matches!(
                        m,
                        Message::CommandAck {
                            command: avis_mavlite::CommandKind::Takeoff,
                            ..
                        }
                    )
                }) {
                    done = true;
                }
            }
            WorkloadStep::GotoAndWait { x, y, z, tolerance } => {
                if !self.sent_command {
                    outgoing.push(Message::CommandGoto { x, y, z });
                    self.sent_command = true;
                } else if self.telemetry.have_status {
                    let dx = self.telemetry.x - x;
                    let dy = self.telemetry.y - y;
                    let horizontal = (dx * dx + dy * dy).sqrt();
                    if horizontal <= tolerance && (self.telemetry.altitude - z).abs() <= 2.0 {
                        done = true;
                    }
                }
            }
            WorkloadStep::WaitAltitudeAbove { altitude } => {
                done = self.telemetry.have_status && self.telemetry.altitude >= altitude;
            }
            WorkloadStep::WaitAltitudeBelow { altitude } => {
                done = self.telemetry.have_status && self.telemetry.altitude <= altitude;
            }
            WorkloadStep::WaitLanded => {
                done = self.telemetry.have_status && self.telemetry.landed;
            }
            WorkloadStep::WaitDisarmed => {
                done = self.telemetry.have_heartbeat && !self.telemetry.armed;
            }
            WorkloadStep::PassTest => {
                self.status = WorkloadStatus::Passed;
                return (outgoing, self.status.clone());
            }
        }

        if done {
            self.index += 1;
            self.step_started = None;
            self.sent_command = false;
            self.waiting_ack = false;
        }
        (outgoing, self.status.clone())
    }
}

/// Builder mirroring the paper's workload-framework API (Figure 8).
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    name: String,
    steps: Vec<WorkloadStep>,
    environment: Environment,
    step_timeout: f64,
}

impl WorkloadBuilder {
    /// Starts a new workload with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        WorkloadBuilder {
            name: name.into(),
            steps: Vec::new(),
            environment: Environment::open_field(),
            step_timeout: 120.0,
        }
    }

    /// Sets the environment the workload flies in.
    pub fn environment(mut self, environment: Environment) -> Self {
        self.environment = environment;
        self
    }

    /// Sets the per-step timeout (seconds of simulated time).
    pub fn step_timeout(mut self, seconds: f64) -> Self {
        self.step_timeout = seconds.max(1.0);
        self
    }

    /// Waits for a fixed amount of simulated time.
    pub fn wait_time(mut self, seconds: f64) -> Self {
        self.steps.push(WorkloadStep::WaitTime { seconds });
        self
    }

    /// Uploads a mission.
    pub fn upload_mission(mut self, items: Vec<MissionItem>) -> Self {
        self.steps.push(WorkloadStep::UploadMission { items });
        self
    }

    /// Arms the vehicle ("arm_system_completely" in the paper).
    pub fn arm_system_completely(mut self) -> Self {
        self.steps.push(WorkloadStep::Arm);
        self
    }

    /// Enters the autonomous mission mode ("enter_auto_mode").
    pub fn enter_auto_mode(mut self) -> Self {
        self.steps.push(WorkloadStep::SetMode {
            mode: ProtocolMode::Auto,
        });
        self
    }

    /// Requests an arbitrary mode.
    pub fn set_mode(mut self, mode: ProtocolMode) -> Self {
        self.steps.push(WorkloadStep::SetMode { mode });
        self
    }

    /// Sends a guided takeoff command.
    pub fn takeoff(mut self, altitude: f64) -> Self {
        self.steps.push(WorkloadStep::Takeoff { altitude });
        self
    }

    /// Sends a guided reposition and waits for arrival.
    pub fn goto_and_wait(mut self, x: f64, y: f64, z: f64, tolerance: f64) -> Self {
        self.steps
            .push(WorkloadStep::GotoAndWait { x, y, z, tolerance });
        self
    }

    /// Waits until the vehicle reports an altitude above the threshold
    /// ("wait_altitude" for the climb in the paper's example).
    pub fn wait_altitude_above(mut self, altitude: f64) -> Self {
        self.steps
            .push(WorkloadStep::WaitAltitudeAbove { altitude });
        self
    }

    /// Waits until the vehicle reports an altitude below the threshold.
    pub fn wait_altitude_below(mut self, altitude: f64) -> Self {
        self.steps
            .push(WorkloadStep::WaitAltitudeBelow { altitude });
        self
    }

    /// Waits until the vehicle reports being landed.
    pub fn wait_landed(mut self) -> Self {
        self.steps.push(WorkloadStep::WaitLanded);
        self
    }

    /// Waits until the vehicle disarms.
    pub fn wait_disarmed(mut self) -> Self {
        self.steps.push(WorkloadStep::WaitDisarmed);
        self
    }

    /// Marks the test as passed ("pass_test").
    pub fn pass_test(mut self) -> Self {
        self.steps.push(WorkloadStep::PassTest);
        self
    }

    /// Builds the workload.
    pub fn build(self) -> ScriptedWorkload {
        ScriptedWorkload::new(self.name, self.steps, self.environment, self.step_timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avis_mavlite::square_mission;

    #[test]
    fn wait_time_advances_after_duration() {
        let mut w = WorkloadBuilder::new("t").wait_time(2.0).pass_test().build();
        let (_, s) = w.tick(&[], 0.0);
        assert_eq!(s, WorkloadStatus::Running);
        let (_, s) = w.tick(&[], 1.0);
        assert_eq!(s, WorkloadStatus::Running);
        let (_, s) = w.tick(&[], 2.1);
        assert_eq!(s, WorkloadStatus::Running);
        // Next tick executes PassTest.
        let (_, s) = w.tick(&[], 2.2);
        assert_eq!(s, WorkloadStatus::Passed);
    }

    #[test]
    fn arm_step_sends_and_waits_for_ack() {
        let mut w = WorkloadBuilder::new("t")
            .arm_system_completely()
            .pass_test()
            .build();
        let (out, _) = w.tick(&[], 0.0);
        assert_eq!(out, vec![Message::ArmDisarm { arm: true }]);
        // No ack yet: nothing more is sent, still running.
        let (out, s) = w.tick(&[], 0.1);
        assert!(out.is_empty());
        assert_eq!(s, WorkloadStatus::Running);
        // Ack arrives.
        let ack = Message::CommandAck {
            command: avis_mavlite::CommandKind::Arm,
            result: avis_mavlite::AckResult::Accepted,
        };
        let (_, s) = w.tick(&[ack], 0.2);
        assert_eq!(s, WorkloadStatus::Running);
        let (_, s) = w.tick(&[], 0.3);
        assert_eq!(s, WorkloadStatus::Passed);
    }

    #[test]
    fn arm_rejection_fails_workload() {
        let mut w = WorkloadBuilder::new("t")
            .arm_system_completely()
            .pass_test()
            .build();
        w.tick(&[], 0.0);
        let nack = Message::CommandAck {
            command: avis_mavlite::CommandKind::Arm,
            result: avis_mavlite::AckResult::Rejected,
        };
        let (_, s) = w.tick(&[nack], 0.1);
        assert!(matches!(s, WorkloadStatus::Failed(_)));
        // Terminal status is sticky.
        let (_, s) = w.tick(&[], 10.0);
        assert!(matches!(s, WorkloadStatus::Failed(_)));
    }

    #[test]
    fn upload_mission_step_runs_handshake() {
        let items = square_mission(20.0, 20.0, true);
        let mut w = WorkloadBuilder::new("t")
            .upload_mission(items.clone())
            .pass_test()
            .build();
        let (out, _) = w.tick(&[], 0.0);
        assert_eq!(
            out,
            vec![Message::MissionCount {
                count: items.len() as u16
            }]
        );
        // Simulate the vehicle requesting each item.
        for seq in 0..items.len() as u16 {
            let (out, s) = w.tick(&[Message::MissionRequest { seq }], 0.1 + seq as f64 * 0.1);
            assert_eq!(s, WorkloadStatus::Running);
            assert!(matches!(out[0], Message::MissionItemMsg { item } if item.seq == seq));
        }
        let (_, s) = w.tick(&[Message::MissionAck { accepted: true }], 1.0);
        assert_eq!(s, WorkloadStatus::Running);
        let (_, s) = w.tick(&[], 1.1);
        assert_eq!(s, WorkloadStatus::Passed);
    }

    #[test]
    fn altitude_waits_use_status_telemetry() {
        let mut w = WorkloadBuilder::new("t")
            .wait_altitude_above(20.0)
            .wait_altitude_below(0.5)
            .pass_test()
            .build();
        let status = |alt: f64| Message::Status {
            x: 0.0,
            y: 0.0,
            altitude: alt,
            climb_rate: 0.0,
            mission_seq: 0,
            landed: false,
        };
        let (_, s) = w.tick(&[status(5.0)], 0.0);
        assert_eq!(s, WorkloadStatus::Running);
        let (_, s) = w.tick(&[status(20.5)], 1.0);
        assert_eq!(s, WorkloadStatus::Running);
        let (_, s) = w.tick(&[status(10.0)], 2.0);
        assert_eq!(s, WorkloadStatus::Running);
        let (_, s) = w.tick(&[status(0.2)], 3.0);
        assert_eq!(s, WorkloadStatus::Running);
        let (_, s) = w.tick(&[], 3.1);
        assert_eq!(s, WorkloadStatus::Passed);
    }

    #[test]
    fn steps_time_out() {
        let mut w = WorkloadBuilder::new("t")
            .step_timeout(5.0)
            .wait_altitude_above(100.0)
            .pass_test()
            .build();
        let (_, s) = w.tick(&[], 0.0);
        assert_eq!(s, WorkloadStatus::Running);
        let (_, s) = w.tick(&[], 5.5);
        assert!(matches!(s, WorkloadStatus::Failed(ref why) if why.contains("timed out")));
    }

    #[test]
    fn fresh_resets_runtime_state() {
        let mut w = WorkloadBuilder::new("t").wait_time(1.0).pass_test().build();
        w.tick(&[], 0.0);
        w.tick(&[], 1.5);
        w.tick(&[], 1.6);
        assert_eq!(*w.status(), WorkloadStatus::Passed);
        let fresh = w.fresh();
        assert_eq!(*fresh.status(), WorkloadStatus::Running);
        assert_eq!(fresh.steps().len(), 2);
        assert_eq!(fresh.name(), "t");
    }

    #[test]
    fn running_out_of_steps_counts_as_pass() {
        let mut w = WorkloadBuilder::new("t").wait_time(0.5).build();
        w.tick(&[], 0.0);
        w.tick(&[], 0.6);
        let (_, s) = w.tick(&[], 0.7);
        assert_eq!(s, WorkloadStatus::Passed);
    }

    #[test]
    fn runtime_codec_round_trips_mid_upload() {
        use avis_sim::codec::{ByteReader, ByteWriter};

        let items = square_mission(20.0, 20.0, true);
        let template = WorkloadBuilder::new("t")
            .upload_mission(items.clone())
            .arm_system_completely()
            .wait_altitude_above(10.0)
            .pass_test()
            .build();

        // Drive the original halfway through the upload handshake so the
        // capture carries a live uploader, telemetry and step state.
        let mut original = template.fresh();
        original.tick(&[], 0.0);
        original.tick(&[Message::MissionRequest { seq: 0 }], 0.1);
        original.tick(&[Message::MissionRequest { seq: 1 }], 0.2);
        let status = Message::Status {
            x: 1.0,
            y: 2.0,
            altitude: 3.0,
            climb_rate: 0.0,
            mission_seq: 0,
            landed: false,
        };
        original.tick(&[status], 0.3);

        let mut w = ByteWriter::new();
        original.encode_runtime(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut restored = template.decode_runtime(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");

        // Both copies must continue the handshake identically.
        for (tick, incoming) in [
            (0.4, vec![Message::MissionRequest { seq: 2 }]),
            (0.5, vec![Message::MissionRequest { seq: 3 }]),
            (0.6, vec![Message::MissionRequest { seq: 4 }]),
            (0.7, vec![Message::MissionRequest { seq: 5 }]),
            (0.8, vec![Message::MissionAck { accepted: true }]),
            (0.9, Vec::new()),
        ] {
            let (out_a, s_a) = original.tick(&incoming, tick);
            let (out_b, s_b) = restored.tick(&incoming, tick);
            assert_eq!(out_a, out_b, "diverged at t = {tick}");
            assert_eq!(s_a, s_b);
        }
        // Both should have advanced to (and sent) the Arm step.
        let ack = Message::CommandAck {
            command: avis_mavlite::CommandKind::Arm,
            result: avis_mavlite::AckResult::Accepted,
        };
        let (out_a, s_a) = original.tick(&[ack], 1.0);
        let (out_b, s_b) = restored.tick(&[ack], 1.0);
        assert_eq!(out_a, out_b);
        assert_eq!(s_a, s_b);
        assert_eq!(s_a, WorkloadStatus::Running);
    }

    #[test]
    fn runtime_decode_rejects_truncated_bytes() {
        use avis_sim::codec::{ByteReader, ByteWriter};

        let template = WorkloadBuilder::new("t").wait_time(1.0).build();
        let mut original = template.fresh();
        original.tick(&[], 0.0);
        let mut w = ByteWriter::new();
        original.encode_runtime(&mut w);
        let bytes = w.into_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let mut r = ByteReader::new(&bytes[..cut]);
            let result = template.decode_runtime(&mut r).and_then(|_| r.finish());
            assert!(result.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn goto_and_wait_checks_position() {
        let mut w = WorkloadBuilder::new("t")
            .goto_and_wait(10.0, 0.0, 20.0, 2.0)
            .pass_test()
            .build();
        let (out, _) = w.tick(&[], 0.0);
        assert_eq!(
            out,
            vec![Message::CommandGoto {
                x: 10.0,
                y: 0.0,
                z: 20.0
            }]
        );
        let far = Message::Status {
            x: 3.0,
            y: 0.0,
            altitude: 20.0,
            climb_rate: 0.0,
            mission_seq: 0,
            landed: false,
        };
        let (_, s) = w.tick(&[far], 1.0);
        assert_eq!(s, WorkloadStatus::Running);
        let near = Message::Status {
            x: 9.0,
            y: 0.5,
            altitude: 19.5,
            climb_rate: 0.0,
            mission_seq: 0,
            landed: false,
        };
        let (_, s) = w.tick(&[near], 2.0);
        assert_eq!(s, WorkloadStatus::Running);
        let (_, s) = w.tick(&[], 2.1);
        assert_eq!(s, WorkloadStatus::Passed);
    }
}
