//! Domain scenario: a survey operator wants to know whether their
//! autonomous waypoint mission survives sensor failures on an
//! ArduPilot-like stack. This example runs the full Avis pipeline on the
//! auto mission and prints a per-bug summary plus the per-mode coverage.
//!
//! ```bash
//! cargo run --release --example auto_mission_check
//! ```

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget};
use avis::report::BugReport;
use avis_firmware::{BugId, BugSet, FirmwareProfile};
use avis_workload::auto_box_mission;

fn main() {
    let profile = FirmwareProfile::ArduPilotLike;
    let result = Campaign::builder()
        .firmware(profile)
        .bugs(BugSet::current_code_base(profile))
        .workload(auto_box_mission())
        .approach(Approach::Avis)
        .budget(Budget::simulations(100))
        .build()
        .run();

    println!("== Avis on the ArduPilot-like auto mission ==");
    println!(
        "simulations: {}   unsafe conditions: {}   (symmetry pruned: {}, found-bug pruned: {})",
        result.simulations,
        result.unsafe_count(),
        result.symmetry_pruned,
        result.found_bug_pruned
    );

    println!("\nPer-mode coverage (Table IV row):");
    for (category, count) in result.per_category() {
        println!("  {category:<10} {count}");
    }

    println!("\nKnown ArduPilot defects exposed:");
    for bug in BugId::UNKNOWN.iter().filter(|b| b.applies_to(profile)) {
        match result.simulations_to_find(*bug) {
            Some(sims) => println!("  {bug}: found after {sims} simulations"),
            None => println!("  {bug}: not triggered within this budget"),
        }
    }

    if let Some(first) = result.unsafe_conditions.first() {
        let report = BugReport::from_unsafe_condition(profile, "auto-box-mission", first);
        println!("\nFirst bug report (JSON artefact):\n{}", report.to_json());
    }
}
