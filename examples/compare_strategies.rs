//! Run all five built-in strategies with the same small budget as one
//! [`ScenarioMatrix`] and compare how many unsafe conditions each finds
//! (a miniature Table III with the round-robin strategy as a fifth row).
//!
//! ```bash
//! cargo run --release --example compare_strategies
//! ```

use avis::checker::{Approach, Budget};
use avis::matrix::ScenarioMatrix;
use avis::strategy::RoundRobinMode;
use avis_firmware::FirmwareProfile;
use avis_workload::auto_box_mission;

fn main() {
    let report = ScenarioMatrix::new()
        .firmware(FirmwareProfile::ArduPilotLike)
        .workload(auto_box_mission())
        .approaches(Approach::ALL)
        .strategy("Round-robin mode", || Box::new(RoundRobinMode::new()))
        .budget(Budget::seconds(2500.0))
        .run();

    println!("strategy          | runs | labels | unsafe found | bugs exposed");
    println!("------------------+------+--------+--------------+-------------");
    for result in &report.results {
        println!(
            "{:<17} | {:>4} | {:>6} | {:>12} | {:?}",
            result.strategy,
            result.simulations,
            result.labels_evaluated,
            result.unsafe_count(),
            result.bugs_found()
        );
    }
    println!(
        "\n(The paper's Table III shows the same ordering: Avis > Stratified BFI >> BFI, Random.)"
    );
    println!("\nAggregated matrix summary:\n{}", report.summary_table());
}
