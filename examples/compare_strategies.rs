//! Run all four fault-injection approaches with the same small budget and
//! compare how many unsafe conditions each finds (a miniature Table III).
//!
//! ```bash
//! cargo run --release --example compare_strategies
//! ```

use avis::checker::{Approach, Budget, Checker, CheckerConfig};
use avis::runner::ExperimentConfig;
use avis_firmware::{BugSet, FirmwareProfile};
use avis_workload::auto_box_mission;

fn main() {
    let profile = FirmwareProfile::ArduPilotLike;
    let budget = Budget::seconds(2500.0);
    println!("approach          | runs | labels | unsafe found | bugs exposed");
    println!("------------------+------+--------+--------------+-------------");
    for approach in Approach::ALL {
        let experiment = ExperimentConfig::new(
            profile,
            BugSet::current_code_base(profile),
            auto_box_mission(),
        );
        let config = CheckerConfig::new(approach, experiment, budget);
        let result = Checker::new(config).run();
        println!(
            "{:<17} | {:>4} | {:>6} | {:>12} | {:?}",
            approach.name(),
            result.simulations,
            result.labels_evaluated,
            result.unsafe_count(),
            result.bugs_found()
        );
    }
    println!(
        "\n(The paper's Table III shows the same ordering: Avis > Stratified BFI >> BFI, Random.)"
    );
}
