//! A custom injection strategy implemented entirely *outside* the core
//! crate, plugged into a campaign through the public [`Strategy`] trait
//! and the fluent builder, with events streamed live at `parallelism = 4`
//! — the extension seam this API redesign exists for.
//!
//! The strategy here is a "landing blitz": the paper observes that
//! landing-phase failure handling is where BFI's training bias is blind,
//! so this strategy spends its whole budget failing each sensor instance
//! in a sweep of injection times around the final descent.
//!
//! ```bash
//! cargo run --release --example custom_strategy
//! ```

use avis::campaign::{Campaign, CampaignEvent, CampaignObserver};
use avis::checker::Budget;
use avis::strategy::{Candidate, Decision, Observation, Strategy, StrategyContext};
use avis_firmware::{BugSet, FirmwareProfile, OperatingMode};
use avis_hinj::{FaultPlan, FaultSpec};
use avis_sim::SensorInstance;

/// Sweep single-instance failures across a time window centred on the
/// golden run's landing transition. One round = one injection time, one
/// candidate per sensor instance.
struct LandingBlitz {
    /// Injection times remaining (s), derived from the golden trace.
    times: Vec<f64>,
    /// The vehicle's sensor complement.
    instances: Vec<SensorInstance>,
    /// The current round's plans, indexed by candidate token.
    round: Vec<FaultPlan>,
}

impl LandingBlitz {
    fn new() -> Self {
        LandingBlitz {
            times: Vec::new(),
            instances: Vec::new(),
            round: Vec::new(),
        }
    }
}

impl Strategy for LandingBlitz {
    fn name(&self) -> &str {
        "Landing blitz"
    }

    fn initialize(&mut self, ctx: &StrategyContext<'_>) {
        self.instances = ctx.sensors.instances();
        // Anchor on the landing transition of the golden run; fall back
        // to the last fifth of the flight if the workload never lands.
        let landing = ctx
            .golden
            .mode_transitions
            .iter()
            .find(|t| t.mode == OperatingMode::Land)
            .map(|t| t.time)
            .unwrap_or(ctx.golden.duration * 0.8);
        // Sweep from 6 s before the transition to 6 s after, skipping
        // times past the flight's end.
        self.times = (-3..=3)
            .map(|step| landing + 2.0 * step as f64)
            .filter(|t| *t >= 0.0 && *t <= ctx.golden.duration)
            .collect();
        // Earliest sweep point first.
        self.times.reverse();
    }

    fn propose(&mut self) -> Vec<Candidate> {
        let Some(time) = self.times.pop() else {
            return Vec::new();
        };
        self.round = self
            .instances
            .iter()
            .map(|&instance| FaultPlan::from_specs(vec![FaultSpec::new(instance, time)]))
            .collect();
        self.round
            .iter()
            .enumerate()
            .map(|(slot, plan)| Candidate::speculate(slot as u64, plan.clone()))
            .collect()
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        Decision::run(self.round[candidate.token() as usize].clone())
    }

    fn observe(&mut self, _observation: &Observation<'_>) {}
}

/// Streams every event as it is committed.
struct LivePrinter;

impl CampaignObserver for LivePrinter {
    fn on_event(&mut self, event: &CampaignEvent) {
        match event {
            CampaignEvent::CampaignStarted {
                strategy,
                profile,
                workload,
                ..
            } => println!(">> {strategy} on {profile} / {workload}"),
            CampaignEvent::ProfilingFinished { runs, cost_seconds } => {
                println!(">> profiled in {runs} runs ({cost_seconds:.0} s)")
            }
            CampaignEvent::RunFinished {
                simulations,
                plan,
                is_unsafe,
                ..
            } => println!(
                "   run {simulations:>3} {} {plan}",
                if *is_unsafe { "UNSAFE" } else { "ok    " }
            ),
            CampaignEvent::ViolationFound { condition } => println!(
                "   !! {:?} violation in {:?}",
                condition
                    .violations
                    .first()
                    .map(|v| v.kind.to_string())
                    .unwrap_or_default(),
                condition.injection_category,
            ),
            CampaignEvent::BudgetProgress {
                consumed_fraction, ..
            } => println!("   budget {:.0}%", consumed_fraction * 100.0),
            CampaignEvent::CampaignFinished {
                simulations,
                unsafe_conditions,
                ..
            } => println!(">> done: {unsafe_conditions} unsafe conditions in {simulations} runs"),
            CampaignEvent::DegradedMode { reason } => println!("   ** degraded: {reason}"),
            CampaignEvent::StoreHydrated {
                chains, snapshots, ..
            } => println!("   store: hydrated {chains} chains ({snapshots} snapshots)"),
            CampaignEvent::StoreFlushed { chains, bytes, .. } => {
                println!("   store: flushed {chains} chains ({bytes} bytes)")
            }
        }
    }
}

fn main() {
    let profile = FirmwareProfile::ArduPilotLike;
    let result = Campaign::builder()
        .firmware(profile)
        .bugs(BugSet::current_code_base(profile))
        .strategy(LandingBlitz::new())
        .budget(Budget::simulations(40))
        .parallelism(4)
        .build()
        .run_with_observer(&mut LivePrinter);

    println!(
        "\nLanding blitz exposed {:?} ({} unsafe conditions, {} symmetry-pruned)",
        result.bugs_found(),
        result.unsafe_count(),
        result.symmetry_pruned,
    );
    assert!(
        result.approach.is_none(),
        "custom strategies carry no Approach"
    );
    assert_eq!(result.strategy, "Landing blitz");
}
