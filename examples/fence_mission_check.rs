//! Domain scenario: a PX4-like vehicle flying a waypoint mission next to
//! restricted airspace (the paper's second default workload). This example
//! checks the PX4 profile with Avis and shows how takeoff-phase failures
//! dominate the findings on that stack.
//!
//! ```bash
//! cargo run --release --example fence_mission_check
//! ```

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget};
use avis_firmware::{BugSet, FirmwareProfile};
use avis_workload::fence_box_mission;

fn main() {
    let profile = FirmwareProfile::Px4Like;
    let workload = fence_box_mission();
    println!(
        "Checking the {} profile on the '{}' workload ({} fence region(s) in the environment)",
        profile,
        workload.name(),
        workload.environment().fences().len()
    );

    let result = Campaign::builder()
        .firmware(profile)
        .bugs(BugSet::current_code_base(profile))
        .workload(workload)
        .approach(Approach::Avis)
        .budget(Budget::simulations(80))
        .build()
        .run();

    println!(
        "\nsimulations: {}   unsafe conditions: {}",
        result.simulations,
        result.unsafe_count()
    );
    println!("\nFindings:");
    for condition in &result.unsafe_conditions {
        println!(
            "  [{:?}] {} -> {}",
            condition.injection_category,
            condition.plan,
            condition
                .violations
                .first()
                .map(|v| v.kind.to_string())
                .unwrap_or_else(|| "unknown".to_string())
        );
    }
    println!("\nBugs exposed: {:?}", result.bugs_found());
}
