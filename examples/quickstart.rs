//! Quickstart: check a buggy firmware with Avis and print what it finds.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use avis::checker::{Approach, Budget, Checker, CheckerConfig};
use avis::runner::ExperimentConfig;
use avis_firmware::{BugSet, FirmwareProfile};
use avis_workload::auto_box_mission;

fn main() {
    // 1. Pick a firmware profile and the set of defects compiled into it.
    //    `current_code_base` enables every previously-unknown bug the paper
    //    reports for that firmware.
    let profile = FirmwareProfile::ArduPilotLike;
    let bugs = BugSet::current_code_base(profile);

    // 2. Pick a workload (the paper's default auto waypoint mission).
    let workload = auto_box_mission();

    // 3. Configure and run an Avis campaign with a small simulation budget.
    let experiment = ExperimentConfig::new(profile, bugs, workload);
    let config = CheckerConfig::new(Approach::Avis, experiment, Budget::simulations(40));
    let result = Checker::new(config).run();

    println!(
        "Avis ran {} simulations ({:.0} simulated seconds) and found {} unsafe conditions.",
        result.simulations,
        result.cost_seconds,
        result.unsafe_count()
    );
    for (i, condition) in result.unsafe_conditions.iter().enumerate() {
        println!(
            "\n#{:<2} faults: {}\n    injected in: {:?} ({:?})\n    violations: {}\n    suspected bugs: {:?}",
            i + 1,
            condition.plan,
            condition.injection_mode,
            condition.injection_category,
            condition
                .violations
                .iter()
                .map(|v| v.kind.to_string())
                .collect::<Vec<_>>()
                .join("; "),
            condition.triggered_bugs,
        );
    }
}
