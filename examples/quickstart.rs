//! Quickstart: check a buggy firmware with Avis and print what it finds,
//! streaming progress while the campaign runs.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use avis::campaign::{Campaign, CampaignEvent, CampaignObserver};
use avis::checker::{Approach, Budget};
use avis_firmware::{BugSet, FirmwareProfile};
use avis_workload::auto_box_mission;

/// A minimal streaming observer: one line per committed run.
struct Progress;

impl CampaignObserver for Progress {
    fn on_event(&mut self, event: &CampaignEvent) {
        match event {
            CampaignEvent::ProfilingFinished { runs, .. } => {
                eprintln!("[profiling done: {runs} golden runs]")
            }
            CampaignEvent::RunFinished {
                simulations,
                plan,
                is_unsafe,
                ..
            } => eprintln!(
                "[run {simulations:>3}] {} {plan}",
                if *is_unsafe { "UNSAFE" } else { "ok    " }
            ),
            _ => {}
        }
    }
}

fn main() {
    // 1. Pick a firmware profile and the set of defects compiled into it.
    //    `current_code_base` enables every previously-unknown bug the paper
    //    reports for that firmware.
    let profile = FirmwareProfile::ArduPilotLike;

    // 2. Configure the campaign fluently: workload, strategy, budget.
    //    Every knob has a default, so only the interesting ones appear.
    let campaign = Campaign::builder()
        .firmware(profile)
        .bugs(BugSet::current_code_base(profile))
        .workload(auto_box_mission())
        .approach(Approach::Avis)
        .budget(Budget::simulations(40))
        .build();

    // 3. Run it, streaming per-run progress to stderr.
    let result = campaign.run_with_observer(&mut Progress);

    println!(
        "\nAvis ran {} simulations ({:.0} simulated seconds) and found {} unsafe conditions.",
        result.simulations,
        result.cost_seconds,
        result.unsafe_count()
    );
    for (i, condition) in result.unsafe_conditions.iter().enumerate() {
        println!(
            "\n#{:<2} faults: {}\n    injected in: {:?} ({:?})\n    violations: {}\n    suspected bugs: {:?}",
            i + 1,
            condition.plan,
            condition.injection_mode,
            condition.injection_category,
            condition
                .violations
                .iter()
                .map(|v| v.kind.to_string())
                .collect::<Vec<_>>()
                .join("; "),
            condition.triggered_bugs,
        );
    }
}
