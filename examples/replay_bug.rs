//! Find an unsafe condition, turn it into a bug report, and replay it to
//! confirm the scenario reproduces (the paper's §IV.D replay mechanism).
//!
//! ```bash
//! cargo run --release --example replay_bug
//! ```

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget};
use avis::monitor::{InvariantMonitor, MonitorConfig};
use avis::report::{replay, BugReport};
use avis::runner::{ExperimentConfig, ExperimentRunner};
use avis_firmware::{BugSet, FirmwareProfile};
use avis_workload::auto_box_mission;

fn main() {
    let profile = FirmwareProfile::ArduPilotLike;
    let bugs = BugSet::current_code_base(profile);

    // Find an unsafe condition with a small Avis campaign.
    let experiment = ExperimentConfig::new(profile, bugs.clone(), auto_box_mission());
    let result = Campaign::builder()
        .experiment(experiment.clone())
        .approach(Approach::Avis)
        .budget(Budget::simulations(40))
        .build()
        .run();
    let Some(condition) = result.unsafe_conditions.first() else {
        println!("No unsafe condition found within the budget; nothing to replay.");
        return;
    };

    let report = BugReport::from_unsafe_condition(profile, "auto-box-mission", condition);
    println!("Bug report:\n{}\n", report.to_json());

    // Re-provision a runner and monitor, then replay the recorded faults.
    let mut runner = ExperimentRunner::new(experiment);
    let profiling = (0..3).map(|i| runner.run_profiling(i).trace).collect();
    let monitor = InvariantMonitor::calibrate(profiling, MonitorConfig::default());
    let outcome = replay(&report, &mut runner, &monitor);

    println!(
        "Replay reproduced the unsafe condition: {} ({} violation(s))",
        outcome.reproduced,
        outcome.violations.len()
    );
    for violation in &outcome.violations {
        println!(
            "  at t={:.1}s in {}: {}",
            violation.time, violation.mode, violation.kind
        );
    }
}
