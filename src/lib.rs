//! Umbrella crate for the Avis reproduction workspace.
//!
//! This crate only re-exports the workspace members so that the
//! repository-level `examples/` and `tests/` can use a single dependency
//! root. The actual implementation lives in the `crates/` directory:
//!
//! - [`avis`] — the model checker (SABRE, pruning, invariant monitor, baselines)
//! - [`avis_firmware`] — the mode-based flight control firmware substrate
//! - [`avis_sim`] — the quadcopter physics / sensor simulator
//! - [`avis_hinj`] — the sensor fault injection interface
//! - [`avis_mavlite`] — the MAVLink-like protocol layer
//! - [`avis_workload`] — the workload framework and default workloads

pub use avis;
pub use avis_firmware;
pub use avis_hinj;
pub use avis_mavlite;
pub use avis_sim;
pub use avis_workload;
