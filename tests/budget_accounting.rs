//! Regression suite for [`Budget`]'s strict-`>` exhaustion semantics: a
//! campaign with `max_simulations = N` executes exactly `N` runs, a cost
//! consumption sitting exactly on `max_cost_seconds` still admits one
//! more run, and the serial and parallel engines account the budget
//! identically at every boundary.

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget, CampaignResult};
use avis::runner::ExperimentConfig;
use avis_firmware::{BugSet, FirmwareProfile};
use avis_sim::SensorNoise;
use avis_workload::auto_box_mission;

fn experiment() -> ExperimentConfig {
    let bugs = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
    let mut experiment =
        ExperimentConfig::new(FirmwareProfile::ArduPilotLike, bugs, auto_box_mission());
    experiment.noise = Some(SensorNoise::default());
    experiment.max_duration = 110.0;
    experiment
}

fn campaign(budget: Budget, parallelism: usize) -> CampaignResult {
    Campaign::builder()
        .experiment(experiment())
        .approach(Approach::Avis)
        .budget(budget)
        .profiling_runs(2)
        .parallelism(parallelism)
        .build()
        .run()
}

#[test]
fn simulation_budget_is_consumed_exactly() {
    // `max_simulations = N` means exactly N runs (profiling included):
    // the Nth queued plan executes, the N+1th never starts.
    for n in [4usize, 7] {
        let result = campaign(Budget::simulations(n), 1);
        assert_eq!(
            result.simulations, n,
            "a {n}-simulation budget must fund exactly {n} runs"
        );
    }
}

#[test]
fn profiling_runs_are_not_cut_short_by_the_budget() {
    // Monitor calibration always completes: a budget smaller than the
    // profiling count is consumed entirely by profiling, and no
    // injection run ever starts.
    let result = Campaign::builder()
        .experiment(experiment())
        .approach(Approach::Avis)
        .budget(Budget::simulations(1))
        .profiling_runs(2)
        .parallelism(1)
        .build()
        .run();
    assert_eq!(result.simulations, 2, "both profiling runs executed");
    assert!(result.unsafe_conditions.is_empty(), "no injection ran");
}

#[test]
fn simulation_budget_accounting_is_identical_across_engines() {
    let serial = campaign(Budget::simulations(7), 1);
    let parallel = campaign(Budget::simulations(7), 4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.simulations, 7);
}

#[test]
fn cost_budget_boundary_is_inclusive_and_identical_across_engines() {
    // Derive a cost cap that lands *exactly* on a run boundary: the cost
    // consumed by a 6-simulation campaign. With strict-`>` semantics a
    // consumption equal to the cap still admits one more run, so the same
    // campaign under `Budget::seconds(cap)` executes exactly one
    // simulation more — and both engines agree on that boundary.
    let reference = campaign(Budget::simulations(6), 1);
    let cap = reference.cost_seconds;

    let serial = campaign(Budget::seconds(cap), 1);
    let parallel = campaign(Budget::seconds(cap), 4);
    assert_eq!(
        serial, parallel,
        "serial and parallel engines diverged at the cost-budget boundary"
    );
    assert_eq!(
        serial.simulations,
        reference.simulations + 1,
        "a consumption sitting exactly on the cap must admit exactly one more run"
    );
    assert!(serial.cost_seconds > cap);
}

#[test]
fn cost_budget_accounting_is_identical_across_engines_mid_run() {
    // A cap that lands mid-run (not on a boundary) must stop both
    // engines at the same simulation.
    let reference = campaign(Budget::simulations(6), 1);
    let cap = reference.cost_seconds - 1.0;
    let serial = campaign(Budget::seconds(cap), 1);
    let parallel = campaign(Budget::seconds(cap), 4);
    assert_eq!(serial, parallel);
    assert_eq!(serial.simulations, reference.simulations);
}
