//! Acceptance suite for the fluent campaign API: a custom [`Strategy`]
//! implemented entirely outside `crates/core` runs a full campaign
//! through [`Campaign::builder`], streams [`CampaignObserver`] events in
//! deterministic commit order at `parallelism = 4`, and a
//! [`ScenarioMatrix`] over 2 firmwares × 3 workloads × 5 strategies
//! produces one aggregated report.

use avis::campaign::{Campaign, CampaignEvent, EventLog};
use avis::checker::{Approach, Budget};
use avis::matrix::ScenarioMatrix;
use avis::strategy::{Candidate, Decision, Observation, RoundRobinMode, Strategy, StrategyContext};
use avis_firmware::{BugSet, FirmwareProfile, OperatingMode};
use avis_hinj::{FaultPlan, FaultSpec};
use avis_sim::{SensorInstance, SensorNoise};
use avis_workload::{auto_box_mission, fence_box_mission, manual_box_survey};

/// A test-local strategy — defined outside the core crate, touching no
/// core internals: fail each sensor instance once, a few seconds after
/// the takeoff transition of the golden run.
struct TakeoffSweep {
    instances: Vec<SensorInstance>,
    time: Option<f64>,
    round: Vec<FaultPlan>,
}

impl TakeoffSweep {
    fn new() -> Self {
        TakeoffSweep {
            instances: Vec::new(),
            time: None,
            round: Vec::new(),
        }
    }
}

impl Strategy for TakeoffSweep {
    fn name(&self) -> &str {
        "Takeoff sweep"
    }

    fn initialize(&mut self, ctx: &StrategyContext<'_>) {
        self.instances = ctx.sensors.instances();
        self.time = ctx
            .golden
            .mode_transitions
            .iter()
            .find(|t| t.mode == OperatingMode::Takeoff)
            .map(|t| t.time + 4.0);
    }

    fn propose(&mut self) -> Vec<Candidate> {
        let Some(time) = self.time.take() else {
            return Vec::new();
        };
        self.round = self
            .instances
            .iter()
            .map(|&instance| FaultPlan::from_specs(vec![FaultSpec::new(instance, time)]))
            .collect();
        self.round
            .iter()
            .enumerate()
            .map(|(slot, plan)| Candidate::speculate(slot as u64, plan.clone()))
            .collect()
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        Decision::run(self.round[candidate.token() as usize].clone())
    }

    fn observe(&mut self, _observation: &Observation<'_>) {}
}

fn custom_campaign(parallelism: usize) -> Campaign {
    Campaign::builder()
        .firmware(FirmwareProfile::ArduPilotLike)
        .bugs(BugSet::current_code_base(FirmwareProfile::ArduPilotLike))
        .workload(auto_box_mission())
        .strategy(TakeoffSweep::new())
        .budget(Budget::simulations(8))
        .profiling_runs(2)
        .max_duration(110.0)
        .noise(SensorNoise::default())
        .parallelism(parallelism)
        .build()
}

#[test]
fn custom_strategy_runs_through_the_builder_with_streaming_events() {
    let mut log = EventLog::new();
    let result = custom_campaign(4).run_with_observer(&mut log);

    assert_eq!(result.strategy, "Takeoff sweep");
    assert!(result.approach.is_none());
    assert!(result.simulations <= 8);
    assert!(
        result.simulations > 2,
        "the sweep injected at least one run"
    );

    // The stream brackets the campaign and narrates every committed run.
    let events = log.events();
    assert!(matches!(
        events.first(),
        Some(CampaignEvent::CampaignStarted { strategy, .. }) if strategy == "Takeoff sweep"
    ));
    assert!(matches!(
        events.last(),
        Some(CampaignEvent::CampaignFinished { simulations, .. })
            if *simulations == result.simulations
    ));
    let runs = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::RunFinished { .. }))
        .count();
    assert_eq!(
        runs,
        result.simulations - 2,
        "one RunFinished per injected run"
    );
    let violations = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::ViolationFound { .. }))
        .count();
    assert_eq!(violations, result.unsafe_count());
    // Simulation counters in RunFinished events increase monotonically
    // (commit order), even though the runs executed on 4 workers.
    let mut last = 0;
    for event in events {
        if let CampaignEvent::RunFinished { simulations, .. } = event {
            assert!(*simulations > last, "commit order regressed");
            last = *simulations;
        }
    }
}

#[test]
fn observer_event_streams_are_deterministic_under_parallelism() {
    let mut serial_log = EventLog::new();
    let serial = custom_campaign(1).run_with_observer(&mut serial_log);
    let mut parallel_log = EventLog::new();
    let parallel = custom_campaign(4).run_with_observer(&mut parallel_log);

    assert_eq!(serial, parallel);
    assert_eq!(
        serial_log.events(),
        parallel_log.events(),
        "the event stream must be bit-identical at every parallelism"
    );

    // Same property for a built-in approach.
    let observed = |parallelism: usize| {
        let mut log = EventLog::new();
        Campaign::builder()
            .bugs(BugSet::current_code_base(FirmwareProfile::ArduPilotLike))
            .approach(Approach::Avis)
            .budget(Budget::simulations(6))
            .profiling_runs(2)
            .max_duration(110.0)
            .parallelism(parallelism)
            .build()
            .run_with_observer(&mut log);
        log.into_events()
    };
    assert_eq!(observed(1), observed(4));
}

#[test]
fn scenario_matrix_aggregates_firmwares_workloads_and_strategies() {
    // 2 firmwares × 3 workloads × 5 strategies (the four approaches plus
    // a custom strategy) — one aggregated report. The per-cell budget is
    // tiny: this pins the grid plumbing, not the search quality.
    let report = ScenarioMatrix::new()
        .firmwares(FirmwareProfile::ALL)
        .workloads([auto_box_mission(), manual_box_survey(), fence_box_mission()])
        .approaches(Approach::ALL)
        .strategy("Round-robin mode", || Box::new(RoundRobinMode::new()))
        .budget(Budget::simulations(3))
        .profiling_runs(2)
        .parallelism(2)
        .run();

    assert_eq!(report.results.len(), 2 * 3 * 5);
    assert_eq!(report.per_strategy().len(), 5);
    for (profile, workload) in [
        (FirmwareProfile::ArduPilotLike, "auto-box-mission"),
        (FirmwareProfile::Px4Like, "fence-box-mission"),
    ] {
        assert!(
            report
                .results
                .iter()
                .any(|r| r.profile == profile && r.workload == workload),
            "missing cell {profile} / {workload}"
        );
    }
    for result in &report.results {
        assert!(result.simulations <= 3, "per-cell budget honoured");
    }
    // The aggregate helpers and the rendered table agree on the totals.
    assert_eq!(
        report.total_unsafe(),
        report.per_strategy().iter().map(|(_, n)| n).sum::<usize>()
    );
    let table = report.summary_table();
    for strategy in [
        "Avis",
        "Stratified BFI",
        "BFI",
        "Random",
        "Round-robin mode",
    ] {
        assert!(table.contains(strategy), "summary table misses {strategy}");
    }
    assert!(report.total_simulations() >= 2 * 3 * 5 * 3);
}
