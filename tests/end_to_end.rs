//! Cross-crate integration tests: the full Avis pipeline against the
//! firmware substrate, covering the paper's three headline claims at small
//! scale — Avis finds the injected bugs, correct firmware yields no false
//! positives, and found scenarios replay deterministically.

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget};
use avis::monitor::{InvariantMonitor, MonitorConfig};
use avis::report::{replay, BugReport};
use avis::runner::{ExperimentConfig, ExperimentRunner};
use avis_firmware::{BugId, BugSet, FirmwareProfile};
use avis_workload::{auto_box_mission, default_workloads};

fn experiment(profile: FirmwareProfile, bugs: BugSet) -> ExperimentConfig {
    let mut config = ExperimentConfig::new(profile, bugs, auto_box_mission());
    config.max_duration = 110.0;
    config
}

#[test]
fn avis_finds_unsafe_conditions_on_the_buggy_code_base() {
    let profile = FirmwareProfile::ArduPilotLike;
    let result = Campaign::builder()
        .experiment(experiment(profile, BugSet::current_code_base(profile)))
        .approach(Approach::Avis)
        .budget(Budget::simulations(25))
        .build()
        .run();
    assert!(
        result.unsafe_count() >= 1,
        "Avis should expose unsafe conditions within 25 simulations"
    );
    assert!(!result.bugs_found().is_empty());
    // Every unsafe condition is attributable and reportable.
    for condition in &result.unsafe_conditions {
        assert!(!condition.violations.is_empty());
        let report = BugReport::from_unsafe_condition(profile, "auto-box-mission", condition);
        let parsed = BugReport::from_json(&report.to_json()).expect("report round-trips");
        assert_eq!(parsed.plan, condition.plan);
    }
}

#[test]
fn fixed_firmware_produces_no_false_positives() {
    let profile = FirmwareProfile::ArduPilotLike;
    let result = Campaign::builder()
        .experiment(experiment(profile, BugSet::none()))
        .approach(Approach::Avis)
        .budget(Budget::simulations(15))
        .profiling_runs(3)
        .build()
        .run();
    assert_eq!(
        result.unsafe_count(),
        0,
        "the paper reports no false positives; found {:?}",
        result.unsafe_conditions
    );
}

#[test]
fn found_scenarios_replay_deterministically() {
    let profile = FirmwareProfile::ArduPilotLike;
    let exp = experiment(profile, BugSet::current_code_base(profile));
    let result = Campaign::builder()
        .experiment(exp.clone())
        .approach(Approach::Avis)
        .budget(Budget::simulations(25))
        .build()
        .run();
    let condition = result
        .unsafe_conditions
        .first()
        .expect("the buggy code base yields at least one unsafe condition");
    let report = BugReport::from_unsafe_condition(profile, "auto-box-mission", condition);

    let mut runner = ExperimentRunner::new(exp);
    let profiling = (0..3).map(|i| runner.run_profiling(i).trace).collect();
    let monitor = InvariantMonitor::calibrate(profiling, MonitorConfig::default());
    let outcome = replay(&report, &mut runner, &monitor);
    assert!(
        outcome.reproduced,
        "replaying the recorded faults must reproduce the violation"
    );
}

#[test]
fn reinserted_known_bug_is_detected_by_avis() {
    // Table V-style single-bug reinsertion: APM-4679 (accelerometer failure
    // between waypoints).
    let bug = BugId::Apm4679;
    let result = Campaign::builder()
        .experiment(experiment(bug.info().firmware, BugSet::only(bug)))
        .approach(Approach::Avis)
        .budget(Budget::simulations(40))
        .build()
        .run();
    let sims = result.simulations_to_find(bug);
    assert!(
        sims.is_some(),
        "Avis should trigger the re-inserted {bug} within 40 simulations"
    );
}

#[test]
fn default_workloads_pass_on_healthy_firmware() {
    // The paper's workloads must complete cleanly on both firmware stacks
    // when no faults are injected.
    for profile in FirmwareProfile::ALL {
        for workload in default_workloads() {
            let mut config = ExperimentConfig::new(profile, BugSet::none(), workload);
            config.max_duration = 130.0;
            let mut runner = ExperimentRunner::new(config);
            let result = runner.run_profiling(0);
            assert_eq!(
                result.trace.workload_status,
                avis_workload::WorkloadStatus::Passed,
                "workload should pass on {profile}"
            );
            assert!(!result.crashed(), "no crash on healthy {profile}");
        }
    }
}

#[test]
fn umbrella_crate_reexports_every_subsystem() {
    // The repository-level crate exposes all workspace members.
    let _ = avis_repro::avis_sim::SensorKind::Gps;
    let _ = avis_repro::avis_firmware::FirmwareProfile::Px4Like;
    let _ = avis_repro::avis_hinj::FaultPlan::empty();
    let _ = avis_repro::avis_mavlite::ProtocolMode::Auto;
    let _ = avis_repro::avis_workload::auto_box_mission();
    let _ = avis_repro::avis::checker::Approach::Avis;
}
