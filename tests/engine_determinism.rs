//! Determinism suite for the campaign engine: for every built-in
//! strategy — the four [`Approach`]es plus [`RoundRobinMode`] — the
//! parallel engine must produce a [`CampaignResult`] structurally
//! identical to the serial engine — same unsafe conditions in the same
//! order, same simulation/cost accounting, same pruning counters — and
//! the simulator's buffer-reusing `step_into` must match the allocating
//! `step` sample-for-sample.

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget, CampaignResult};
use avis::matrix::ScenarioMatrix;
use avis::runner::ExperimentConfig;
use avis::snapshot::{CheckpointConfig, SharedSnapshotTier};
use avis::strategy::{LinkProbeStrategy, RoundRobinMode};
use avis_firmware::{BugId, BugSet, FirmwareProfile};
use avis_hinj::{LinkDirection, LinkFaultKind, LinkFaultPlan, LinkFaultSpec, StormCommand};
use avis_sim::simulator::{SimConfig, Simulator, StepOutput};
use avis_sim::{Environment, MotorCommands, SensorNoise};
use avis_workload::auto_box_mission;
use std::sync::Arc;

fn experiment() -> ExperimentConfig {
    let bugs = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
    let mut experiment =
        ExperimentConfig::new(FirmwareProfile::ArduPilotLike, bugs, auto_box_mission());
    experiment.noise = Some(SensorNoise::default());
    experiment.max_duration = 110.0;
    experiment
}

fn campaign(approach: Approach, parallelism: usize) -> CampaignResult {
    Campaign::builder()
        .experiment(experiment())
        .approach(approach)
        .budget(Budget::simulations(6))
        .profiling_runs(1)
        .parallelism(parallelism)
        .build()
        .run()
}

fn assert_identical(approach: Approach) {
    let serial = campaign(approach, 1);
    let parallel = campaign(approach, 4);
    assert_eq!(
        serial, parallel,
        "{approach}: parallel campaign diverged from the serial engine"
    );
    // The budget was honoured, and the accounting carried over exactly.
    assert!(serial.simulations <= 6);
    assert_eq!(serial.simulations, parallel.simulations);
    assert_eq!(serial.cost_seconds, parallel.cost_seconds);
    assert_eq!(serial.symmetry_pruned, parallel.symmetry_pruned);
    assert_eq!(serial.found_bug_pruned, parallel.found_bug_pruned);
    assert_eq!(serial.labels_evaluated, parallel.labels_evaluated);
}

#[test]
fn avis_campaign_is_deterministic_across_engines() {
    assert_identical(Approach::Avis);
}

#[test]
fn stratified_bfi_campaign_is_deterministic_across_engines() {
    assert_identical(Approach::StratifiedBfi);
}

#[test]
fn bfi_campaign_is_deterministic_across_engines() {
    assert_identical(Approach::Bfi);
}

#[test]
fn random_campaign_is_deterministic_across_engines() {
    assert_identical(Approach::Random);
}

#[test]
fn round_robin_campaign_is_deterministic_across_engines() {
    // The fifth built-in strategy goes through the custom-strategy path
    // (no Approach), so this also pins determinism for the extension
    // seam itself.
    let run = |parallelism: usize| {
        Campaign::builder()
            .experiment(experiment())
            .strategy(RoundRobinMode::new())
            .budget(Budget::simulations(6))
            .profiling_runs(1)
            .parallelism(parallelism)
            .build()
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "round-robin: parallel campaign diverged from the serial engine"
    );
    assert!(serial.approach.is_none());
    assert_eq!(serial.strategy, "Round-robin mode");
}

#[test]
fn checkpointed_campaign_is_bit_identical_to_cold_execution() {
    // The two-tier checkpoint store must be invisible in every campaign
    // observable: a campaign whose runs fork from cached snapshots —
    // per-runner tree, cross-worker shared tier, anchor-placed or
    // interval-placed cuts — produces the same `CampaignResult` as one
    // that cold-starts every run from t = 0, at parallelism 1 (one
    // runner cache) and at parallelism 4 (independent per-worker caches
    // in different fill states, warmed through the shared tier).
    let run = |checkpoints: CheckpointConfig,
               parallelism: usize,
               tier: Option<Arc<SharedSnapshotTier>>| {
        let mut builder = Campaign::builder()
            .experiment(experiment())
            .approach(Approach::Avis)
            .budget(Budget::simulations(8))
            .profiling_runs(1)
            .parallelism(parallelism)
            .checkpoints(checkpoints);
        if let Some(tier) = tier {
            builder = builder.shared_snapshots(tier);
        }
        builder.build().run()
    };
    let cold = run(CheckpointConfig::disabled(), 1, None);
    for parallelism in [1, 4] {
        let checkpointed = run(CheckpointConfig::default(), parallelism, None);
        assert_eq!(
            cold, checkpointed,
            "checkpointed campaign (parallelism {parallelism}) diverged from cold execution"
        );
        // A constrained memory budget (eviction on nearly every record)
        // must be equally invisible.
        let budgeted = run(
            CheckpointConfig::with_max_bytes(96 * 1024),
            parallelism,
            None,
        );
        assert_eq!(
            cold, budgeted,
            "memory-budgeted campaign (parallelism {parallelism}) diverged from cold execution"
        );
        // An explicit shared tier — including one pre-warmed by an
        // earlier campaign over the same experiment — must be equally
        // invisible: the second campaign forks from the first one's
        // published snapshots and still reproduces the cold result.
        let tier = Arc::new(SharedSnapshotTier::new(48 * 1024 * 1024));
        let first = run(
            CheckpointConfig::default(),
            parallelism,
            Some(Arc::clone(&tier)),
        );
        assert_eq!(
            cold, first,
            "shared-tier campaign (parallelism {parallelism}) diverged from cold execution"
        );
        let warmed = run(
            CheckpointConfig::default(),
            parallelism,
            Some(Arc::clone(&tier)),
        );
        assert_eq!(
            cold, warmed,
            "tier-warmed campaign (parallelism {parallelism}) diverged from cold execution"
        );
        assert!(
            tier.stats().published_snapshots > 0,
            "the shared tier should have published snapshots (parallelism {parallelism}): {:?}",
            tier.stats()
        );
        // An interval-only placement (anchor placement off) must match too.
        let interval_only = run(
            CheckpointConfig {
                anchor_placement: false,
                ..CheckpointConfig::default()
            },
            parallelism,
            None,
        );
        assert_eq!(
            cold, interval_only,
            "interval-only campaign (parallelism {parallelism}) diverged from cold execution"
        );
        // Delta-chain encoding at either extreme — keyframes only
        // (stride 1) and delta-encoding nearly every cut under budget
        // pressure (stride 16, tight budget) — must be equally
        // invisible: re-materialised cuts are bit-exact.
        for stride in [1, 16] {
            let encoded = run(
                CheckpointConfig {
                    keyframe_stride: stride,
                    max_bytes: 512 * 1024,
                    ..CheckpointConfig::default()
                },
                parallelism,
                None,
            );
            assert_eq!(
                cold, encoded,
                "delta-chain campaign (stride {stride}, parallelism {parallelism}) \
                 diverged from cold execution"
            );
        }
    }
    assert!(
        !cold.unsafe_conditions.is_empty(),
        "the comparison should cover unsafe-condition bookkeeping too"
    );
}

#[test]
fn bug_dense_campaign_with_pruning_aware_wavefronts_is_deterministic() {
    // The bug-dense regime: most commits find bugs, so the engine keeps
    // shrinking speculation (pruning-aware wavefront sizing) and
    // regrowing it after bug-free wavefronts. Sizing decides only which
    // runs are *pre-executed*, never which commit — the parallel result
    // must stay bit-identical to the serial engine while actually
    // exercising the shrink/regrow path (the budget spans several
    // wavefronts with unsafe commits in between).
    let run = |parallelism: usize| {
        Campaign::builder()
            .experiment(experiment())
            .approach(Approach::Avis)
            .budget(Budget::simulations(12))
            .profiling_runs(1)
            .parallelism(parallelism)
            .build()
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "bug-dense parallel campaign diverged from the serial engine"
    );
    assert!(
        serial.unsafe_conditions.len() >= 2,
        "the bug-dense scenario should commit several unsafe runs: {}",
        serial.unsafe_conditions.len()
    );
}

#[test]
fn dispatch_modes_are_bit_identical_at_every_parallelism() {
    // Prefix-sharded dispatch pins whole prefix families to workers and
    // steals across families; round-robin deals jobs out one at a time.
    // Placement decides only which worker *pre-executes* a run — the
    // commit path is byte-for-byte shared — so both modes must reproduce
    // the serial result exactly, on the fixed and the buggy code base.
    use avis::DispatchMode;
    let run = |bugs: BugSet, parallelism: usize, dispatch: DispatchMode| {
        let mut experiment = experiment();
        experiment.bugs = bugs;
        Campaign::builder()
            .experiment(experiment)
            .approach(Approach::Avis)
            .budget(Budget::simulations(8))
            .profiling_runs(1)
            .parallelism(parallelism)
            .dispatch(dispatch)
            .build()
            .run()
    };
    for bugs in [
        BugSet::none(),
        BugSet::current_code_base(FirmwareProfile::ArduPilotLike),
    ] {
        let serial = run(bugs.clone(), 1, DispatchMode::PrefixSharded);
        for dispatch in [DispatchMode::PrefixSharded, DispatchMode::RoundRobin] {
            let parallel = run(bugs.clone(), 4, dispatch);
            assert_eq!(
                serial, parallel,
                "{dispatch:?} at parallelism 4 diverged from the serial engine"
            );
        }
    }
}

#[test]
fn speculation_admission_is_bit_identical_at_parallelism_4() {
    // The admission gate (`Strategy::prune_probability`) withholds
    // likely-doomed speculative jobs on the buggy code base, where bug
    // findings concentrate at shared injection sites. Withheld jobs
    // execute inline at commit, so the result must stay bit-identical to
    // the serial engine — this pins the regression at a budget large
    // enough that admission actually engages (bugs accumulate across
    // several wavefronts).
    let run = |parallelism: usize| {
        Campaign::builder()
            .experiment(experiment())
            .approach(Approach::Avis)
            .budget(Budget::simulations(16))
            .profiling_runs(1)
            .parallelism(parallelism)
            .build()
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "speculation admission changed a campaign observable"
    );
    assert!(
        serial.unsafe_conditions.len() >= 2,
        "the scenario should accumulate bug sites for the admission gate: {}",
        serial.unsafe_conditions.len()
    );
}

#[test]
fn parallel_avis_campaign_still_finds_bugs() {
    // Guards against a degenerate "determinism" where both engines find
    // nothing: the buggy code base must expose unsafe conditions through
    // the parallel path too.
    let result = campaign(Approach::Avis, 4);
    assert!(
        !result.unsafe_conditions.is_empty(),
        "the parallel engine should find the same unsafe conditions the serial one does"
    );
}

/// The firmware with only the seeded protocol defect (PROTO-101)
/// compiled in: unreachable by any sensor-fault plan, exposed only when
/// a link fault duplicates or storms the arm command.
fn proto_experiment() -> ExperimentConfig {
    let mut experiment = ExperimentConfig::new(
        FirmwareProfile::ArduPilotLike,
        BugSet::only(BugId::ProtoDoubleArm),
        auto_box_mission(),
    );
    experiment.noise = Some(SensorNoise::default());
    experiment.max_duration = 110.0;
    experiment
}

/// An arm-command storm injected mid-mission, while the vehicle is
/// airborne: the duplicated `ArmDisarm` toggles the buggy handler and
/// the motors cut out in the air.
fn arm_storm() -> LinkFaultPlan {
    LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
        LinkFaultKind::Storm {
            command: StormCommand::Arm,
            count: 8,
        },
        LinkDirection::ToVehicle,
        40.0,
    )])
}

#[test]
fn link_fault_campaign_is_deterministic_across_engines() {
    // A campaign with a pinned link-fault environment must satisfy the
    // same determinism contract as a sensor-only campaign: bit-identical
    // results at every parallelism. It must also actually reproduce the
    // seeded protocol defect, which no sensor-fault plan can reach.
    let run = |parallelism: usize| {
        Campaign::builder()
            .experiment(proto_experiment())
            .approach(Approach::Avis)
            .link_faults(arm_storm())
            .budget(Budget::simulations(6))
            .profiling_runs(1)
            .parallelism(parallelism)
            .build()
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "link-fault campaign diverged between serial and parallel engines"
    );
    assert!(
        serial.bugs_found().contains(&BugId::ProtoDoubleArm),
        "the arm storm should reproduce PROTO-101: {:?}",
        serial.bugs_found()
    );
}

#[test]
fn link_fault_campaign_checkpointed_matches_cold_execution() {
    // Checkpointing must stay invisible when plans carry link faults:
    // combined (sensor ∪ link) injection prefixes guarantee a forked run
    // replays the link shim's rng stream exactly, so cold, checkpointed
    // and delta-chain execution agree bit-for-bit at every parallelism.
    let run = |checkpoints: CheckpointConfig, parallelism: usize| {
        Campaign::builder()
            .experiment(proto_experiment())
            .approach(Approach::Avis)
            .link_faults(arm_storm())
            .budget(Budget::simulations(8))
            .profiling_runs(1)
            .parallelism(parallelism)
            .checkpoints(checkpoints)
            .build()
            .run()
    };
    let cold = run(CheckpointConfig::disabled(), 1);
    assert!(
        !cold.unsafe_conditions.is_empty(),
        "the comparison should cover unsafe-condition bookkeeping"
    );
    for parallelism in [1, 4] {
        let checkpointed = run(CheckpointConfig::default(), parallelism);
        assert_eq!(
            cold, checkpointed,
            "checkpointed link-fault campaign (parallelism {parallelism}) \
             diverged from cold execution"
        );
        let delta_chain = run(
            CheckpointConfig {
                keyframe_stride: 16,
                max_bytes: 512 * 1024,
                ..CheckpointConfig::default()
            },
            parallelism,
        );
        assert_eq!(
            cold, delta_chain,
            "delta-chain link-fault campaign (parallelism {parallelism}) \
             diverged from cold execution"
        );
    }
}

#[test]
fn matrix_link_fault_sweep_reproduces_the_protocol_defect() {
    // The acceptance scenario: a `ScenarioMatrix` sweeping link-fault
    // scenarios as a fourth dimension deterministically reproduces the
    // seeded protocol defect in the faulty-link cell — and only there —
    // with a bit-identical report at parallelism 1 and 4.
    let run = |parallelism: usize| {
        ScenarioMatrix::new()
            .firmware(FirmwareProfile::ArduPilotLike)
            .workload(auto_box_mission())
            .bugs(BugSet::only(BugId::ProtoDoubleArm))
            .approach(Approach::Avis)
            .link_scenario("clean", LinkFaultPlan::empty())
            .link_scenario("arm-storm", arm_storm())
            .budget(Budget::simulations(5))
            .profiling_runs(1)
            .parallelism(parallelism)
            .max_duration(110.0)
            .noise(SensorNoise::default())
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "link-fault matrix sweep diverged between parallelism 1 and 4"
    );
    assert_eq!(serial.results.len(), 2);
    for cell in &serial.results {
        match cell.link_scenario.as_deref() {
            Some("clean") => assert!(
                cell.bugs_found().is_empty(),
                "the protocol defect must be unreachable over a clean link"
            ),
            Some("arm-storm") => assert!(
                cell.bugs_found().contains(&BugId::ProtoDoubleArm),
                "the faulty-link cell should reproduce PROTO-101: {:?}",
                cell.bugs_found()
            ),
            other => panic!("unexpected link scenario {other:?}"),
        }
    }
}

#[test]
fn link_probe_strategy_finds_the_protocol_defect() {
    // The link-fault *search* dimension: the probe enumerates drop /
    // duplicate / corrupt / reorder / delay windows and command storms at
    // the golden run's mode transitions, with no prior knowledge of
    // which scenario matters — and must still reach the arm-storm probe
    // that exposes PROTO-101, identically at every parallelism.
    let run = |parallelism: usize| {
        Campaign::builder()
            .experiment(proto_experiment())
            .strategy(LinkProbeStrategy::new())
            .budget(Budget::simulations(40))
            .profiling_runs(1)
            .parallelism(parallelism)
            .build()
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "link-probe campaign diverged between serial and parallel engines"
    );
    assert_eq!(serial.strategy, "Link probe");
    assert!(
        serial.bugs_found().contains(&BugId::ProtoDoubleArm),
        "the probe sweep should reproduce PROTO-101: {:?}",
        serial.bugs_found()
    );
}

#[test]
fn step_into_matches_step_sample_for_sample() {
    let make = || {
        Simulator::new(
            SimConfig {
                seed: 11,
                ..SimConfig::default()
            },
            Environment::open_field(),
        )
    };
    let mut with_step = make();
    let mut with_step_into = make();
    let mut output = StepOutput::empty();
    for i in 0..4000 {
        let throttle = match i {
            0..=1500 => 0.85,
            1501..=3000 => 0.4,
            _ => 0.0,
        };
        let cmd = MotorCommands::uniform(throttle);
        let expected = with_step.step(&cmd);
        with_step_into.step_into(&cmd, &mut output);
        assert_eq!(output, expected, "divergence at step {i}");
    }
}
