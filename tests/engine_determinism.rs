//! Determinism suite for the campaign engine: for every built-in
//! strategy — the four [`Approach`]es plus [`RoundRobinMode`] — the
//! parallel engine must produce a [`CampaignResult`] structurally
//! identical to the serial engine — same unsafe conditions in the same
//! order, same simulation/cost accounting, same pruning counters — and
//! the simulator's buffer-reusing `step_into` must match the allocating
//! `step` sample-for-sample.

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget, CampaignResult};
use avis::matrix::ScenarioMatrix;
use avis::runner::{ExperimentConfig, ExperimentRunner, RunVerdict};
use avis::snapshot::{CheckpointConfig, SharedSnapshotTier};
use avis::strategy::{
    Candidate, Decision, LinkProbeStrategy, Observation, RoundRobinMode, Strategy, StrategyContext,
};
use avis_firmware::{BugId, BugSet, FirmwareProfile};
use avis_hinj::{
    FaultPlan, FaultSpec, LinkDirection, LinkFaultKind, LinkFaultPlan, LinkFaultSpec, StormCommand,
};
use avis_sim::simulator::{SimConfig, Simulator, StepOutput};
use avis_sim::{Environment, MotorCommands, SensorInstance, SensorKind, SensorNoise};
use avis_workload::{auto_box_mission, manual_box_survey};
use std::sync::Arc;

fn experiment() -> ExperimentConfig {
    let bugs = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
    let mut experiment =
        ExperimentConfig::new(FirmwareProfile::ArduPilotLike, bugs, auto_box_mission());
    experiment.noise = Some(SensorNoise::default());
    experiment.max_duration = 110.0;
    experiment
}

fn campaign(approach: Approach, parallelism: usize) -> CampaignResult {
    Campaign::builder()
        .experiment(experiment())
        .approach(approach)
        .budget(Budget::simulations(6))
        .profiling_runs(1)
        .parallelism(parallelism)
        .build()
        .run()
}

fn assert_identical(approach: Approach) {
    let serial = campaign(approach, 1);
    let parallel = campaign(approach, 4);
    assert_eq!(
        serial, parallel,
        "{approach}: parallel campaign diverged from the serial engine"
    );
    // The budget was honoured, and the accounting carried over exactly.
    assert!(serial.simulations <= 6);
    assert_eq!(serial.simulations, parallel.simulations);
    assert_eq!(serial.cost_seconds, parallel.cost_seconds);
    assert_eq!(serial.symmetry_pruned, parallel.symmetry_pruned);
    assert_eq!(serial.found_bug_pruned, parallel.found_bug_pruned);
    assert_eq!(serial.labels_evaluated, parallel.labels_evaluated);
}

#[test]
fn avis_campaign_is_deterministic_across_engines() {
    assert_identical(Approach::Avis);
}

#[test]
fn stratified_bfi_campaign_is_deterministic_across_engines() {
    assert_identical(Approach::StratifiedBfi);
}

#[test]
fn bfi_campaign_is_deterministic_across_engines() {
    assert_identical(Approach::Bfi);
}

#[test]
fn random_campaign_is_deterministic_across_engines() {
    assert_identical(Approach::Random);
}

#[test]
fn round_robin_campaign_is_deterministic_across_engines() {
    // The fifth built-in strategy goes through the custom-strategy path
    // (no Approach), so this also pins determinism for the extension
    // seam itself.
    let run = |parallelism: usize| {
        Campaign::builder()
            .experiment(experiment())
            .strategy(RoundRobinMode::new())
            .budget(Budget::simulations(6))
            .profiling_runs(1)
            .parallelism(parallelism)
            .build()
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "round-robin: parallel campaign diverged from the serial engine"
    );
    assert!(serial.approach.is_none());
    assert_eq!(serial.strategy, "Round-robin mode");
}

#[test]
fn checkpointed_campaign_is_bit_identical_to_cold_execution() {
    // The two-tier checkpoint store must be invisible in every campaign
    // observable: a campaign whose runs fork from cached snapshots —
    // per-runner tree, cross-worker shared tier, anchor-placed or
    // interval-placed cuts — produces the same `CampaignResult` as one
    // that cold-starts every run from t = 0, at parallelism 1 (one
    // runner cache) and at parallelism 4 (independent per-worker caches
    // in different fill states, warmed through the shared tier).
    let run = |checkpoints: CheckpointConfig,
               parallelism: usize,
               tier: Option<Arc<SharedSnapshotTier>>| {
        let mut builder = Campaign::builder()
            .experiment(experiment())
            .approach(Approach::Avis)
            .budget(Budget::simulations(8))
            .profiling_runs(1)
            .parallelism(parallelism)
            .checkpoints(checkpoints);
        if let Some(tier) = tier {
            builder = builder.shared_snapshots(tier);
        }
        builder.build().run()
    };
    let cold = run(CheckpointConfig::disabled(), 1, None);
    for parallelism in [1, 4] {
        let checkpointed = run(CheckpointConfig::default(), parallelism, None);
        assert_eq!(
            cold, checkpointed,
            "checkpointed campaign (parallelism {parallelism}) diverged from cold execution"
        );
        // A constrained memory budget (eviction on nearly every record)
        // must be equally invisible.
        let budgeted = run(
            CheckpointConfig::with_max_bytes(96 * 1024),
            parallelism,
            None,
        );
        assert_eq!(
            cold, budgeted,
            "memory-budgeted campaign (parallelism {parallelism}) diverged from cold execution"
        );
        // An explicit shared tier — including one pre-warmed by an
        // earlier campaign over the same experiment — must be equally
        // invisible: the second campaign forks from the first one's
        // published snapshots and still reproduces the cold result.
        let tier = Arc::new(SharedSnapshotTier::new(48 * 1024 * 1024));
        let first = run(
            CheckpointConfig::default(),
            parallelism,
            Some(Arc::clone(&tier)),
        );
        assert_eq!(
            cold, first,
            "shared-tier campaign (parallelism {parallelism}) diverged from cold execution"
        );
        let warmed = run(
            CheckpointConfig::default(),
            parallelism,
            Some(Arc::clone(&tier)),
        );
        assert_eq!(
            cold, warmed,
            "tier-warmed campaign (parallelism {parallelism}) diverged from cold execution"
        );
        assert!(
            tier.stats().published_snapshots > 0,
            "the shared tier should have published snapshots (parallelism {parallelism}): {:?}",
            tier.stats()
        );
        // An interval-only placement (anchor placement off) must match too.
        let interval_only = run(
            CheckpointConfig {
                anchor_placement: false,
                ..CheckpointConfig::default()
            },
            parallelism,
            None,
        );
        assert_eq!(
            cold, interval_only,
            "interval-only campaign (parallelism {parallelism}) diverged from cold execution"
        );
        // Delta-chain encoding at either extreme — keyframes only
        // (stride 1) and delta-encoding nearly every cut under budget
        // pressure (stride 16, tight budget) — must be equally
        // invisible: re-materialised cuts are bit-exact.
        for stride in [1, 16] {
            let encoded = run(
                CheckpointConfig {
                    keyframe_stride: stride,
                    max_bytes: 512 * 1024,
                    ..CheckpointConfig::default()
                },
                parallelism,
                None,
            );
            assert_eq!(
                cold, encoded,
                "delta-chain campaign (stride {stride}, parallelism {parallelism}) \
                 diverged from cold execution"
            );
        }
    }
    assert!(
        !cold.unsafe_conditions.is_empty(),
        "the comparison should cover unsafe-condition bookkeeping too"
    );
}

#[test]
fn bug_dense_campaign_with_pruning_aware_wavefronts_is_deterministic() {
    // The bug-dense regime: most commits find bugs, so the engine keeps
    // shrinking speculation (pruning-aware wavefront sizing) and
    // regrowing it after bug-free wavefronts. Sizing decides only which
    // runs are *pre-executed*, never which commit — the parallel result
    // must stay bit-identical to the serial engine while actually
    // exercising the shrink/regrow path (the budget spans several
    // wavefronts with unsafe commits in between).
    let run = |parallelism: usize| {
        Campaign::builder()
            .experiment(experiment())
            .approach(Approach::Avis)
            .budget(Budget::simulations(12))
            .profiling_runs(1)
            .parallelism(parallelism)
            .build()
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "bug-dense parallel campaign diverged from the serial engine"
    );
    assert!(
        serial.unsafe_conditions.len() >= 2,
        "the bug-dense scenario should commit several unsafe runs: {}",
        serial.unsafe_conditions.len()
    );
}

#[test]
fn dispatch_modes_are_bit_identical_at_every_parallelism() {
    // Prefix-sharded dispatch pins whole prefix families to workers and
    // steals across families; round-robin deals jobs out one at a time.
    // Placement decides only which worker *pre-executes* a run — the
    // commit path is byte-for-byte shared — so both modes must reproduce
    // the serial result exactly, on the fixed and the buggy code base.
    use avis::DispatchMode;
    let run = |bugs: BugSet, parallelism: usize, dispatch: DispatchMode| {
        let mut experiment = experiment();
        experiment.bugs = bugs;
        Campaign::builder()
            .experiment(experiment)
            .approach(Approach::Avis)
            .budget(Budget::simulations(8))
            .profiling_runs(1)
            .parallelism(parallelism)
            .dispatch(dispatch)
            .build()
            .run()
    };
    for bugs in [
        BugSet::none(),
        BugSet::current_code_base(FirmwareProfile::ArduPilotLike),
    ] {
        let serial = run(bugs.clone(), 1, DispatchMode::PrefixSharded);
        for dispatch in [DispatchMode::PrefixSharded, DispatchMode::RoundRobin] {
            let parallel = run(bugs.clone(), 4, dispatch);
            assert_eq!(
                serial, parallel,
                "{dispatch:?} at parallelism 4 diverged from the serial engine"
            );
        }
    }
}

#[test]
fn speculation_admission_is_bit_identical_at_parallelism_4() {
    // The admission gate (`Strategy::prune_probability`) withholds
    // likely-doomed speculative jobs on the buggy code base, where bug
    // findings concentrate at shared injection sites. Withheld jobs
    // execute inline at commit, so the result must stay bit-identical to
    // the serial engine — this pins the regression at a budget large
    // enough that admission actually engages (bugs accumulate across
    // several wavefronts).
    let run = |parallelism: usize| {
        Campaign::builder()
            .experiment(experiment())
            .approach(Approach::Avis)
            .budget(Budget::simulations(16))
            .profiling_runs(1)
            .parallelism(parallelism)
            .build()
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "speculation admission changed a campaign observable"
    );
    assert!(
        serial.unsafe_conditions.len() >= 2,
        "the scenario should accumulate bug sites for the admission gate: {}",
        serial.unsafe_conditions.len()
    );
}

#[test]
fn batched_lockstep_campaign_is_bit_identical_to_scalar() {
    // The lockstep-batching pin: a campaign that steps prefix-sharing
    // plans through the SoA multi-lane batch (`lockstep_lanes` > 1) must
    // be bit-identical to the scalar single-lane engine. Lane count is a
    // speed-only knob — it never appears in a campaign observable — so
    // scalar, 4-lane and 8-lane execution agree byte-for-byte, cold and
    // checkpointed, at parallelism 1 (serial wavefront batching) and 4
    // (per-worker chunk batching).
    let run = |lanes: usize, parallelism: usize, checkpoints: CheckpointConfig| {
        Campaign::builder()
            .experiment(experiment())
            .approach(Approach::Avis)
            .budget(Budget::simulations(8))
            .profiling_runs(1)
            .parallelism(parallelism)
            .checkpoints(checkpoints)
            .lockstep_lanes(lanes)
            .build()
            .run()
    };
    let scalar = run(1, 1, CheckpointConfig::disabled());
    assert!(
        !scalar.unsafe_conditions.is_empty(),
        "the comparison should cover unsafe-condition bookkeeping"
    );
    for parallelism in [1, 4] {
        for lanes in [4, 8] {
            let batched = run(lanes, parallelism, CheckpointConfig::disabled());
            assert_eq!(
                scalar, batched,
                "cold {lanes}-lane campaign (parallelism {parallelism}) \
                 diverged from the scalar engine"
            );
        }
        let checkpointed = run(4, parallelism, CheckpointConfig::default());
        assert_eq!(
            scalar, checkpointed,
            "checkpointed 4-lane campaign (parallelism {parallelism}) \
             diverged from the cold scalar engine"
        );
    }
}

#[test]
fn batched_lockstep_link_fault_campaign_matches_scalar() {
    // Same pin under a pinned link-fault environment: lanes carry live
    // `FaultyLink` shims whose rng streams must stay aligned with the
    // scalar path, and mid-air arm storms force mode departures that
    // evict lanes to the scalar loop. Cold and checkpointed batched
    // execution still reproduce the scalar result — and the seeded
    // protocol defect — exactly.
    let run = |lanes: usize, parallelism: usize, checkpoints: CheckpointConfig| {
        Campaign::builder()
            .experiment(proto_experiment())
            .approach(Approach::Avis)
            .link_faults(arm_storm())
            .budget(Budget::simulations(8))
            .profiling_runs(1)
            .parallelism(parallelism)
            .checkpoints(checkpoints)
            .lockstep_lanes(lanes)
            .build()
            .run()
    };
    let scalar = run(1, 1, CheckpointConfig::disabled());
    assert!(
        scalar.bugs_found().contains(&BugId::ProtoDoubleArm),
        "the arm storm should reproduce PROTO-101: {:?}",
        scalar.bugs_found()
    );
    for parallelism in [1, 4] {
        let batched = run(4, parallelism, CheckpointConfig::disabled());
        assert_eq!(
            scalar, batched,
            "cold 4-lane link-fault campaign (parallelism {parallelism}) \
             diverged from the scalar engine"
        );
        let checkpointed = run(4, parallelism, CheckpointConfig::default());
        assert_eq!(
            scalar, checkpointed,
            "checkpointed 4-lane link-fault campaign (parallelism {parallelism}) \
             diverged from the scalar engine"
        );
    }
}

#[test]
fn parallel_avis_campaign_still_finds_bugs() {
    // Guards against a degenerate "determinism" where both engines find
    // nothing: the buggy code base must expose unsafe conditions through
    // the parallel path too.
    let result = campaign(Approach::Avis, 4);
    assert!(
        !result.unsafe_conditions.is_empty(),
        "the parallel engine should find the same unsafe conditions the serial one does"
    );
}

/// The firmware with only the seeded protocol defect (PROTO-101)
/// compiled in: unreachable by any sensor-fault plan, exposed only when
/// a link fault duplicates or storms the arm command.
fn proto_experiment() -> ExperimentConfig {
    let mut experiment = ExperimentConfig::new(
        FirmwareProfile::ArduPilotLike,
        BugSet::only(BugId::ProtoDoubleArm),
        auto_box_mission(),
    );
    experiment.noise = Some(SensorNoise::default());
    experiment.max_duration = 110.0;
    experiment
}

/// An arm-command storm injected mid-mission, while the vehicle is
/// airborne: the duplicated `ArmDisarm` toggles the buggy handler and
/// the motors cut out in the air.
fn arm_storm() -> LinkFaultPlan {
    LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
        LinkFaultKind::Storm {
            command: StormCommand::Arm,
            count: 8,
        },
        LinkDirection::ToVehicle,
        40.0,
    )])
}

#[test]
fn link_fault_campaign_is_deterministic_across_engines() {
    // A campaign with a pinned link-fault environment must satisfy the
    // same determinism contract as a sensor-only campaign: bit-identical
    // results at every parallelism. It must also actually reproduce the
    // seeded protocol defect, which no sensor-fault plan can reach.
    let run = |parallelism: usize| {
        Campaign::builder()
            .experiment(proto_experiment())
            .approach(Approach::Avis)
            .link_faults(arm_storm())
            .budget(Budget::simulations(6))
            .profiling_runs(1)
            .parallelism(parallelism)
            .build()
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "link-fault campaign diverged between serial and parallel engines"
    );
    assert!(
        serial.bugs_found().contains(&BugId::ProtoDoubleArm),
        "the arm storm should reproduce PROTO-101: {:?}",
        serial.bugs_found()
    );
}

#[test]
fn link_fault_campaign_checkpointed_matches_cold_execution() {
    // Checkpointing must stay invisible when plans carry link faults:
    // combined (sensor ∪ link) injection prefixes guarantee a forked run
    // replays the link shim's rng stream exactly, so cold, checkpointed
    // and delta-chain execution agree bit-for-bit at every parallelism.
    let run = |checkpoints: CheckpointConfig, parallelism: usize| {
        Campaign::builder()
            .experiment(proto_experiment())
            .approach(Approach::Avis)
            .link_faults(arm_storm())
            .budget(Budget::simulations(8))
            .profiling_runs(1)
            .parallelism(parallelism)
            .checkpoints(checkpoints)
            .build()
            .run()
    };
    let cold = run(CheckpointConfig::disabled(), 1);
    assert!(
        !cold.unsafe_conditions.is_empty(),
        "the comparison should cover unsafe-condition bookkeeping"
    );
    for parallelism in [1, 4] {
        let checkpointed = run(CheckpointConfig::default(), parallelism);
        assert_eq!(
            cold, checkpointed,
            "checkpointed link-fault campaign (parallelism {parallelism}) \
             diverged from cold execution"
        );
        let delta_chain = run(
            CheckpointConfig {
                keyframe_stride: 16,
                max_bytes: 512 * 1024,
                ..CheckpointConfig::default()
            },
            parallelism,
        );
        assert_eq!(
            cold, delta_chain,
            "delta-chain link-fault campaign (parallelism {parallelism}) \
             diverged from cold execution"
        );
    }
}

#[test]
fn matrix_link_fault_sweep_reproduces_the_protocol_defect() {
    // The acceptance scenario: a `ScenarioMatrix` sweeping link-fault
    // scenarios as a fourth dimension deterministically reproduces the
    // seeded protocol defect in the faulty-link cell — and only there —
    // with a bit-identical report at parallelism 1 and 4.
    let run = |parallelism: usize| {
        ScenarioMatrix::new()
            .firmware(FirmwareProfile::ArduPilotLike)
            .workload(auto_box_mission())
            .bugs(BugSet::only(BugId::ProtoDoubleArm))
            .approach(Approach::Avis)
            .link_scenario("clean", LinkFaultPlan::empty())
            .link_scenario("arm-storm", arm_storm())
            .budget(Budget::simulations(5))
            .profiling_runs(1)
            .parallelism(parallelism)
            .max_duration(110.0)
            .noise(SensorNoise::default())
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "link-fault matrix sweep diverged between parallelism 1 and 4"
    );
    assert_eq!(serial.results.len(), 2);
    for cell in &serial.results {
        match cell.link_scenario.as_deref() {
            Some("clean") => assert!(
                cell.bugs_found().is_empty(),
                "the protocol defect must be unreachable over a clean link"
            ),
            Some("arm-storm") => assert!(
                cell.bugs_found().contains(&BugId::ProtoDoubleArm),
                "the faulty-link cell should reproduce PROTO-101: {:?}",
                cell.bugs_found()
            ),
            other => panic!("unexpected link scenario {other:?}"),
        }
    }
}

#[test]
fn link_probe_strategy_finds_the_protocol_defect() {
    // The link-fault *search* dimension: the probe enumerates drop /
    // duplicate / corrupt / reorder / delay windows and command storms at
    // the golden run's mode transitions, with no prior knowledge of
    // which scenario matters — and must still reach the arm-storm probe
    // that exposes PROTO-101, identically at every parallelism.
    let run = |parallelism: usize| {
        Campaign::builder()
            .experiment(proto_experiment())
            .strategy(LinkProbeStrategy::new())
            .budget(Budget::simulations(40))
            .profiling_runs(1)
            .parallelism(parallelism)
            .build()
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "link-probe campaign diverged between serial and parallel engines"
    );
    assert_eq!(serial.strategy, "Link probe");
    assert!(
        serial.bugs_found().contains(&BugId::ProtoDoubleArm),
        "the probe sweep should reproduce PROTO-101: {:?}",
        serial.bugs_found()
    );
}

/// A minimal deterministic strategy that proposes a fixed list of plans
/// as one round — the harness for seeding a known crashing plan into a
/// campaign without depending on any search heuristic finding it.
struct ScriptedPlans {
    plans: Vec<FaultPlan>,
    proposed: bool,
}

impl ScriptedPlans {
    fn new(plans: Vec<FaultPlan>) -> Self {
        ScriptedPlans {
            plans,
            proposed: false,
        }
    }
}

impl Strategy for ScriptedPlans {
    fn name(&self) -> &str {
        "Scripted plans"
    }

    fn initialize(&mut self, _ctx: &StrategyContext<'_>) {}

    fn propose(&mut self) -> Vec<Candidate> {
        if self.proposed {
            return Vec::new();
        }
        self.proposed = true;
        self.plans
            .iter()
            .enumerate()
            .map(|(i, plan)| Candidate::speculate(i as u64, plan.clone()))
            .collect()
    }

    fn decide(&mut self, candidate: &Candidate) -> Decision {
        Decision::run(self.plans[candidate.token() as usize].clone())
    }

    fn observe(&mut self, _observation: &Observation<'_>) {}
}

/// The firmware with only the seeded crash defect (PROTO-102) compiled
/// in: a takeoff command accepted against a stale position estimate
/// aborts the firmware instead of rejecting the climb.
fn panic_experiment() -> ExperimentConfig {
    let mut experiment = ExperimentConfig::new(
        FirmwareProfile::ArduPilotLike,
        BugSet::only(BugId::ProtoPanicOnStaleEkf),
        manual_box_survey(),
    );
    experiment.noise = Some(SensorNoise::default());
    experiment.max_duration = 110.0;
    experiment
}

/// The sensor half of the PROTO-102 trigger: both GPS units fail at
/// t = 3.6 s — after the (delayed) arm command lands at ~3.5 s but
/// before the mode change arrives, so the position estimate is stale by
/// the time the takeoff command reaches the firmware.
fn stale_ekf_gps() -> FaultPlan {
    FaultPlan::from_specs(vec![
        FaultSpec::new(SensorInstance::new(SensorKind::Gps, 0), 3.6),
        FaultSpec::new(SensorInstance::new(SensorKind::Gps, 1), 3.6),
    ])
}

/// The link half of the trigger: GCS → vehicle commands are delayed by
/// 1.5 s during the launch sequence, opening the arm-to-mode-change
/// window the GPS failure must land in. Without this delay the same GPS
/// plan completes normally (the defect is invisible to pure sensor-fault
/// campaigns).
fn command_delay() -> LinkFaultPlan {
    LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
        LinkFaultKind::Delay {
            duration: 5.0,
            seconds: 1.5,
        },
        LinkDirection::ToVehicle,
        1.0,
    )])
}

#[test]
fn crashing_run_is_contained_and_bit_identical_across_engines() {
    // The crash-containment acceptance scenario: a campaign whose
    // wavefront contains a run that panics the firmware must (a) survive
    // — the panic is converted into a `Crashed` verdict and reported in
    // `CampaignResult::crashes`, (b) keep executing every other proposed
    // job (a panicking worker must not leak its shard family), and
    // (c) stay bit-identical at parallelism 1 and 4, with checkpointing
    // on or off.
    let plans = vec![
        FaultPlan::from_specs(vec![FaultSpec::new(
            SensorInstance::new(SensorKind::Compass, 0),
            40.0,
        )]),
        stale_ekf_gps(),
        FaultPlan::from_specs(vec![FaultSpec::new(
            SensorInstance::new(SensorKind::Barometer, 0),
            50.0,
        )]),
        FaultPlan::from_specs(vec![FaultSpec::new(
            SensorInstance::new(SensorKind::Gyroscope, 0),
            60.0,
        )]),
    ];
    let run = |parallelism: usize, checkpoints: CheckpointConfig| {
        Campaign::builder()
            .experiment(panic_experiment())
            .strategy(ScriptedPlans::new(plans.clone()))
            .link_faults(command_delay())
            .budget(Budget::simulations(10))
            .profiling_runs(1)
            .parallelism(parallelism)
            .checkpoints(checkpoints)
            .build()
            .run()
    };
    let cold = run(1, CheckpointConfig::disabled());
    for parallelism in [1, 4] {
        for checkpoints in [CheckpointConfig::disabled(), CheckpointConfig::default()] {
            let other = run(parallelism, checkpoints);
            assert_eq!(
                cold, other,
                "crash-contained campaign (parallelism {parallelism}) \
                 diverged from the serial cold engine"
            );
        }
    }
    assert_eq!(
        cold.crashes.len(),
        1,
        "exactly the seeded plan should crash: {:?}",
        cold.crashes
    );
    let crash = &cold.crashes[0];
    assert!(
        crash.message.contains("PROTO-102"),
        "the crash report should carry the firmware's panic message: {}",
        crash.message
    );
    assert!(crash.step > 0, "the crash step should be recorded");
    assert!(
        crash
            .plan
            .specs()
            .any(|s| s.instance.kind == SensorKind::Gps),
        "the crash report should carry the injected plan: {}",
        crash.plan
    );
    // Job accounting: the crashing run must not swallow its wavefront —
    // every proposed plan was decided and executed (1 profiling run +
    // all 4 scripted plans).
    assert_eq!(
        cold.simulations,
        1 + plans.len(),
        "a crashed run leaked other proposed jobs"
    );
}

#[test]
fn crash_is_unreachable_without_the_link_fault() {
    // Sanity check on the seeded defect itself: the same GPS plan over a
    // healthy link completes normally — PROTO-102 needs the delayed
    // command window, so pure sensor-fault campaigns never abort.
    let result = Campaign::builder()
        .experiment(panic_experiment())
        .strategy(ScriptedPlans::new(vec![stale_ekf_gps()]))
        .budget(Budget::simulations(4))
        .profiling_runs(1)
        .parallelism(1)
        .build()
        .run();
    assert!(
        result.crashes.is_empty(),
        "PROTO-102 should be unreachable over a clean link: {:?}",
        result.crashes
    );
}

#[test]
fn matrix_crash_cell_reports_exactly_one_crashed_verdict() {
    // The CI crash-containment smoke: a matrix sweeping a clean link
    // against the delayed-command scenario reports the seeded firmware
    // crash in the faulty-link cell — and only there — identically at
    // parallelism 1 and 4.
    let plans = vec![stale_ekf_gps()];
    let run = |parallelism: usize| {
        let plans = plans.clone();
        ScenarioMatrix::new()
            .firmware(FirmwareProfile::ArduPilotLike)
            .workload(manual_box_survey())
            .bugs(BugSet::only(BugId::ProtoPanicOnStaleEkf))
            .strategy("stale-ekf probe", move || {
                Box::new(ScriptedPlans::new(plans.clone()))
            })
            .link_scenario("clean", LinkFaultPlan::empty())
            .link_scenario("delayed-commands", command_delay())
            .budget(Budget::simulations(4))
            .profiling_runs(1)
            .parallelism(parallelism)
            .max_duration(110.0)
            .noise(SensorNoise::default())
            .run()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "crash-containment matrix diverged between parallelism 1 and 4"
    );
    assert_eq!(serial.results.len(), 2);
    for cell in &serial.results {
        match cell.link_scenario.as_deref() {
            Some("clean") => assert!(
                cell.crashes.is_empty(),
                "the crash must be unreachable over a clean link"
            ),
            Some("delayed-commands") => {
                assert_eq!(
                    cell.crashes.len(),
                    1,
                    "the faulty-link cell should report exactly one crashed \
                     verdict: {:?}",
                    cell.crashes
                );
                assert!(cell.crashes[0].message.contains("PROTO-102"));
            }
            other => panic!("unexpected link scenario {other:?}"),
        }
    }
}

#[test]
fn step_budget_watchdog_marks_runs_diverged() {
    // The deterministic watchdog: a run exceeding its step budget is cut
    // off and marked `Diverged` — identically wherever it executes, since
    // the step cursor derives from simulated time, not wall clock.
    let mut experiment = experiment();
    experiment.watchdog.max_steps = Some(400);
    let mut runner = ExperimentRunner::new(experiment.clone());
    let result = runner.run_contained(FaultPlan::empty());
    assert_eq!(result.verdict, RunVerdict::Diverged);
    // The budget bounds the trace: dt = 0.005 → 400 steps = 2 s.
    let last = result.trace.samples.last().expect("truncated trace");
    assert!(
        last.time <= 400.0 * experiment.dt + 1e-9,
        "the watchdog should have cut the run at its step budget: {}",
        last.time
    );
    // A budget-less runner completes the same plan normally.
    let mut unbounded = experiment;
    unbounded.watchdog.max_steps = None;
    let mut runner = ExperimentRunner::new(unbounded);
    assert_eq!(
        runner.run_contained(FaultPlan::empty()).verdict,
        RunVerdict::Completed
    );
}

#[test]
fn corrupted_snapshot_chain_is_quarantined_with_cold_fallback() {
    // Snapshot quarantine: corrupting a cached delta chain must be
    // detected at materialisation time (checksum mismatch), the chain
    // quarantined, and the run transparently re-executed from t = 0 with
    // a bit-identical result — corruption costs time, never correctness.
    let forked = FaultPlan::from_specs(vec![
        FaultSpec::new(SensorInstance::new(SensorKind::Gps, 0), 30.0),
        FaultSpec::new(SensorInstance::new(SensorKind::Compass, 0), 60.0),
    ]);
    let base = FaultPlan::from_specs(vec![FaultSpec::new(
        SensorInstance::new(SensorKind::Gps, 0),
        30.0,
    )]);

    let mut cold_experiment = experiment();
    cold_experiment.checkpoints = CheckpointConfig::disabled();
    let mut cold_runner = ExperimentRunner::new(cold_experiment);
    let cold = cold_runner.run_contained(forked.clone());

    let mut warm_runner = ExperimentRunner::new(experiment());
    // Record the base chain, then flip a byte in every cached entry.
    let _ = warm_runner.run_contained(base);
    warm_runner.corrupt_cached_chains_for_test();
    let recovered = warm_runner.run_contained(forked);
    assert_eq!(
        cold, recovered,
        "the quarantine fallback diverged from cold execution"
    );
    let stats = warm_runner.checkpoint_stats();
    assert!(
        stats.checksum_failures >= 1,
        "the corruption should have been detected: {stats:?}"
    );
    assert!(
        stats.quarantined >= 1,
        "the corrupt chain should have been quarantined: {stats:?}"
    );
}

#[test]
fn repeated_checksum_failures_trip_the_checkpoint_breaker() {
    // Graceful degradation: after repeated integrity failures the
    // per-cache breaker disables checkpointing for the rest of the
    // campaign; runs keep completing (cold) instead of thrashing on a
    // corrupt store.
    let plan = FaultPlan::from_specs(vec![FaultSpec::new(
        SensorInstance::new(SensorKind::Gps, 0),
        30.0,
    )]);
    let mut runner = ExperimentRunner::new(experiment());
    let reference = runner.run_contained(plan.clone());
    for _ in 0..3 {
        runner.corrupt_cached_chains_for_test();
        let rerun = runner.run_contained(plan.clone());
        assert_eq!(
            reference, rerun,
            "a corrupted store changed a run result before degrading"
        );
    }
    assert!(
        runner.checkpointing_degraded(),
        "three checksum failures should trip the breaker: {:?}",
        runner.checkpoint_stats()
    );
    // Runs still execute (cold) after degradation.
    let after = runner.run_contained(plan);
    assert_eq!(reference, after, "degraded mode changed a run result");
}

#[test]
fn step_into_matches_step_sample_for_sample() {
    let make = || {
        Simulator::new(
            SimConfig {
                seed: 11,
                ..SimConfig::default()
            },
            Environment::open_field(),
        )
    };
    let mut with_step = make();
    let mut with_step_into = make();
    let mut output = StepOutput::empty();
    for i in 0..4000 {
        let throttle = match i {
            0..=1500 => 0.85,
            1501..=3000 => 0.4,
            _ => 0.0,
        };
        let cmd = MotorCommands::uniform(throttle);
        let expected = with_step.step(&cmd);
        with_step_into.step_into(&cmd, &mut output);
        assert_eq!(output, expected, "divergence at step {i}");
    }
}
