//! Property-based tests over the core data structures and invariants,
//! spanning the simulator math, the wire codec, fault plans, the pruning
//! signatures and the fluent campaign builder.
//!
//! The build environment has no crates.io access, so instead of
//! `proptest` these use a seeded [`SimRng`] to draw a few hundred random
//! cases per property — fully deterministic across runs, with the case
//! data included in assertion messages for shrink-free debugging.

use avis::campaign::{Campaign, CampaignBuilder};
use avis::checker::{Approach, Budget};
use avis::pruning::RoleSignature;
use avis_hinj::{FaultPlan, FaultSpec};
use avis_mavlite::{
    decode_frame, encode_frame, Endpoint, Link, Message, MissionCommand, MissionItem, ProtocolMode,
    FRAME_MAGIC,
};
use avis_sim::math::{wrap_angle, Quat, Vec3};
use avis_sim::{SensorInstance, SensorKind, SimRng};

const CASES: usize = 300;

fn arb_vec3(rng: &mut SimRng) -> Vec3 {
    Vec3::new(
        rng.uniform_range(-1e3, 1e3),
        rng.uniform_range(-1e3, 1e3),
        rng.uniform_range(-1e3, 1e3),
    )
}

fn arb_sensor_kind(rng: &mut SimRng) -> SensorKind {
    SensorKind::ALL[rng.index(SensorKind::ALL.len())]
}

fn arb_instance(rng: &mut SimRng) -> SensorInstance {
    SensorInstance::new(arb_sensor_kind(rng), rng.index(3) as u8)
}

fn arb_spec(rng: &mut SimRng) -> FaultSpec {
    FaultSpec::new(arb_instance(rng), rng.uniform_range(0.0, 200.0))
}

fn arb_message(rng: &mut SimRng) -> Message {
    match rng.index(10) {
        0 => Message::Heartbeat {
            mode: if rng.chance(0.5) {
                ProtocolMode::Auto
            } else {
                ProtocolMode::Land
            },
            armed: rng.chance(0.5),
        },
        1 => Message::Status {
            x: rng.uniform_range(-500.0, 500.0),
            y: rng.uniform_range(-500.0, 500.0),
            altitude: rng.uniform_range(0.0, 120.0),
            climb_rate: rng.uniform_range(-10.0, 10.0),
            mission_seq: rng.index(20) as u16,
            landed: rng.chance(0.5),
        },
        2 => Message::ArmDisarm {
            arm: rng.chance(0.5),
        },
        3 => Message::CommandTakeoff {
            altitude: rng.uniform_range(0.0, 100.0),
        },
        4 => Message::CommandGoto {
            x: rng.uniform_range(-200.0, 200.0),
            y: rng.uniform_range(-200.0, 200.0),
            z: rng.uniform_range(0.0, 100.0),
        },
        5 => Message::MissionCount {
            count: rng.index(100) as u16,
        },
        6 => Message::MissionRequest {
            seq: rng.index(100) as u16,
        },
        7 => Message::MissionItemMsg {
            item: MissionItem::new(
                rng.index(30) as u16,
                MissionCommand::Waypoint {
                    x: rng.uniform_range(-100.0, 100.0),
                    y: rng.uniform_range(-100.0, 100.0),
                    z: rng.uniform_range(1.0, 60.0),
                },
            ),
        },
        8 => Message::MissionAck {
            accepted: rng.chance(0.5),
        },
        _ => Message::StatusText {
            severity: rng.index(8) as u8,
        },
    }
}

/// Rotating any vector by any attitude preserves its length, and rotating
/// back recovers the original vector.
#[test]
fn quaternion_rotation_preserves_norm() {
    let mut rng = SimRng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let v = arb_vec3(&mut rng);
        let roll = rng.uniform_range(-3.0, 3.0);
        let pitch = rng.uniform_range(-1.5, 1.5);
        let yaw = rng.uniform_range(-3.0, 3.0);
        let q = Quat::from_euler(roll, pitch, yaw);
        let rotated = q.rotate(v);
        assert!(
            (rotated.norm() - v.norm()).abs() < 1e-6,
            "norm not preserved: v={v:?} rpy=({roll},{pitch},{yaw})"
        );
        let back = q.rotate_inverse(rotated);
        assert!(
            back.distance(v) < 1e-6,
            "inverse rotation diverged: v={v:?}"
        );
    }
}

/// Wrapped angles always land in (-pi, pi] and wrapping is idempotent.
#[test]
fn wrap_angle_stays_in_range() {
    let mut rng = SimRng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let angle = rng.uniform_range(-1e4, 1e4);
        let wrapped = wrap_angle(angle);
        assert!(wrapped > -std::f64::consts::PI - 1e-9, "angle={angle}");
        assert!(wrapped <= std::f64::consts::PI + 1e-9, "angle={angle}");
        assert!(
            (wrap_angle(wrapped) - wrapped).abs() < 1e-9,
            "angle={angle}"
        );
    }
}

/// The triangle inequality holds for the Euclidean position distance used
/// by the invariant monitor.
#[test]
fn position_distance_triangle_inequality() {
    let mut rng = SimRng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let (a, b, c) = (arb_vec3(&mut rng), arb_vec3(&mut rng), arb_vec3(&mut rng));
        assert!(
            a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9,
            "triangle inequality failed: a={a:?} b={b:?} c={c:?}"
        );
        assert!(a.distance(b) >= 0.0);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
    }
}

/// Every MAVLite message survives an encode/decode round trip.
#[test]
fn mavlite_frames_round_trip() {
    let mut rng = SimRng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let msg = arb_message(&mut rng);
        let seq = rng.index(256) as u8;
        let frame = encode_frame(&msg, seq);
        let (decoded, decoded_seq, used) = decode_frame(&frame).expect("well-formed frame");
        assert_eq!(decoded, msg);
        assert_eq!(decoded_seq, seq);
        assert_eq!(used, frame.len());
    }
}

/// Corrupting any single payload byte of a frame never yields a wrong
/// message: decoding either fails or (for the rare case where the
/// corrupted byte is outside the checksummed region boundary) returns the
/// original message.
#[test]
fn mavlite_detects_single_byte_corruption() {
    let mut rng = SimRng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let msg = arb_message(&mut rng);
        let frame = encode_frame(&msg, 7);
        let mut bytes = frame.to_vec();
        let idx = (1 + rng.index(63)) % bytes.len();
        let bit = rng.index(8) as u8;
        if idx == 0 {
            // Corrupting the magic byte is always detected as BadMagic.
            bytes[0] ^= 1 << bit;
            assert!(decode_frame(&bytes).is_err(), "msg={msg:?}");
        } else {
            bytes[idx] ^= 1 << bit;
            match decode_frame(&bytes) {
                Err(_) => {}
                Ok((decoded, _, _)) => {
                    assert_eq!(
                        decoded, msg,
                        "corrupted byte {idx} bit {bit} changed message"
                    )
                }
            }
        }
    }
}

/// The codec never panics on adversarial input: any byte string — random
/// garbage, truncated frames, multi-bit-corrupted frames — either decodes
/// to some message or fails cleanly.
#[test]
fn mavlite_decoder_never_panics_on_adversarial_bytes() {
    let mut rng = SimRng::seed_from_u64(0xC1);
    for case in 0..CASES {
        let bytes: Vec<u8> = match case % 3 {
            // Pure garbage of arbitrary length (including empty).
            0 => (0..rng.index(80)).map(|_| rng.index(256) as u8).collect(),
            // A real frame truncated at an arbitrary point.
            1 => {
                let msg = arb_message(&mut rng);
                let frame = encode_frame(&msg, rng.index(256) as u8);
                let cut = rng.index(frame.len() + 1);
                frame[..cut].to_vec()
            }
            // A real frame with several random bytes flipped.
            _ => {
                let msg = arb_message(&mut rng);
                let mut frame = encode_frame(&msg, rng.index(256) as u8).to_vec();
                for _ in 0..1 + rng.index(4) {
                    let idx = rng.index(frame.len());
                    frame[idx] ^= rng.index(256) as u8;
                }
                frame
            }
        };
        // Must not panic, whatever it returns.
        let _ = decode_frame(&bytes);
    }
}

/// A garbage prefix free of magic bytes never costs a frame: the
/// receiver resynchronises on the first real `FRAME_MAGIC` and every
/// intact frame after the garbage decodes exactly.
#[test]
fn mavlite_link_resynchronises_past_a_garbage_prefix() {
    let mut rng = SimRng::seed_from_u64(0xC2);
    for case in 0..CASES {
        let mut link = Link::new();
        let garbage: Vec<u8> = (0..1 + rng.index(40))
            .map(|_| {
                let b = rng.index(256) as u8;
                if b == FRAME_MAGIC {
                    b ^ 0xFF
                } else {
                    b
                }
            })
            .collect();
        link.inject_frame(Endpoint::Vehicle, &garbage);
        let intact: Vec<Message> = (0..1 + rng.index(4))
            .map(|_| arb_message(&mut rng))
            .collect();
        for msg in &intact {
            link.send(Endpoint::GroundStation, msg);
        }
        assert_eq!(
            link.drain(Endpoint::Vehicle),
            intact,
            "case {case}: garbage prefix {garbage:?} cost a frame"
        );
        assert!(link.decode_error_count() > 0, "case {case}");
        assert_eq!(link.pending_bytes(Endpoint::Vehicle), 0, "case {case}");
    }
}

/// A link stream *recovers* from arbitrary damage: garbage that may embed
/// fake frame headers plus a corrupted frame can swallow a bounded amount
/// of following traffic (a fake header claims at most one max-size frame),
/// but the receiver always resynchronises within a few frames, after which
/// intact traffic decodes exactly, forever.
#[test]
fn mavlite_link_recovers_from_adversarial_damage() {
    let mut rng = SimRng::seed_from_u64(0xC3);
    for case in 0..CASES {
        let mut link = Link::new();
        // Adversarial garbage, with magic bytes deliberately over-
        // represented so resync has to reject fake headers too.
        let garbage: Vec<u8> = (0..rng.index(40))
            .map(|_| {
                if rng.chance(0.2) {
                    FRAME_MAGIC
                } else {
                    rng.index(256) as u8
                }
            })
            .collect();
        link.inject_frame(Endpoint::Vehicle, &garbage);
        // A damaged frame: encode then flip one non-magic byte.
        let damaged_msg = arb_message(&mut rng);
        let mut damaged = encode_frame(&damaged_msg, 0).to_vec();
        let idx = 1 + rng.index(damaged.len() - 1);
        damaged[idx] ^= 1 + rng.index(255) as u8;
        link.inject_frame(Endpoint::Vehicle, &damaged);
        // Feed sync traffic until the receiver has fully drained its
        // stream: a pending byte count of zero after a drain means every
        // fake header has been consumed and rejected, i.e. the stream is
        // frame-aligned again. Each round adds one frame, and a fake
        // header can claim at most one max-size frame of look-ahead, so
        // alignment must return within a small bounded number of rounds.
        let mut recovered = false;
        for _ in 0..64 {
            link.send(
                Endpoint::GroundStation,
                &Message::StatusText { severity: 6 },
            );
            link.drain(Endpoint::Vehicle);
            if link.pending_bytes(Endpoint::Vehicle) == 0 {
                recovered = true;
                break;
            }
        }
        assert!(
            recovered,
            "case {case}: stream never resynchronised after {garbage:?}"
        );
        // Once re-aligned, intact traffic decodes exactly.
        let intact: Vec<Message> = (0..1 + rng.index(4))
            .map(|_| arb_message(&mut rng))
            .collect();
        for msg in &intact {
            link.send(Endpoint::GroundStation, msg);
        }
        assert_eq!(
            link.drain(Endpoint::Vehicle),
            intact,
            "case {case}: recovered stream must decode intact frames exactly"
        );
    }
}

/// Fault plans are order-independent sets: building a plan from any
/// permutation of the same specs yields the same canonical key, and a
/// sensor never fails more than once.
#[test]
fn fault_plan_canonicalisation() {
    let mut rng = SimRng::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let specs: Vec<FaultSpec> = (0..rng.index(8)).map(|_| arb_spec(&mut rng)).collect();
        let plan = FaultPlan::from_specs(specs.clone());
        let mut reversed = specs.clone();
        reversed.reverse();
        let plan_rev = FaultPlan::from_specs(reversed);
        assert_eq!(
            plan.canonical_key(),
            plan_rev.canonical_key(),
            "specs={specs:?}"
        );
        // At most one failure per instance, at the earliest requested time.
        let distinct: std::collections::BTreeSet<_> = specs.iter().map(|s| s.instance).collect();
        assert_eq!(plan.len(), distinct.len(), "specs={specs:?}");
        for spec in &specs {
            let time = plan
                .failure_time(spec.instance)
                .expect("instance scheduled");
            assert!(time <= spec.time + 1e-9, "specs={specs:?}");
        }
        // The failure predicate is monotone in time.
        for spec in plan.specs() {
            assert!(!plan.is_failed(spec.instance, spec.time - 0.001));
            assert!(plan.is_failed(spec.instance, spec.time));
            assert!(plan.is_failed(spec.instance, spec.time + 1000.0));
        }
    }
}

/// Role signatures are invariant under backup-index renaming and a plan
/// is always a subset of any plan that extends it.
#[test]
fn role_signature_symmetry_and_subsets() {
    let mut rng = SimRng::seed_from_u64(0xA7);
    for _ in 0..CASES {
        let specs: Vec<FaultSpec> = (0..1 + rng.index(5)).map(|_| arb_spec(&mut rng)).collect();
        let extra = arb_spec(&mut rng);
        let plan = FaultPlan::from_specs(specs.clone());
        // Rename backups: index 1 <-> 2 (index 0 stays primary).
        let renamed: Vec<FaultSpec> = specs
            .iter()
            .map(|s| {
                let index = match s.instance.index {
                    1 => 2,
                    2 => 1,
                    other => other,
                };
                FaultSpec::new(SensorInstance::new(s.instance.kind, index), s.time)
            })
            .collect();
        let renamed_plan = FaultPlan::from_specs(renamed);
        assert_eq!(
            RoleSignature::of(&plan),
            RoleSignature::of(&renamed_plan),
            "specs={specs:?}"
        );

        // Adding a failure of a *new* instance extends the plan, so the
        // original signature must be contained in the extended one. (When
        // `extra` re-schedules an instance already in the plan, the earlier
        // time wins and the original entry is replaced, so containment is
        // not expected.)
        if plan.failure_time(extra.instance).is_none() {
            let extended = plan.with(extra);
            assert!(
                RoleSignature::of(&plan).is_subset_of(&RoleSignature::of(&extended)),
                "specs={specs:?} extra={extra:?}"
            );
        }
    }
}

/// Builder setters applied in any order produce the same campaign as the
/// equivalent legacy `CheckerConfig` construction: the fluent API is a
/// pure re-spelling of the deprecated one, not a different engine.
#[test]
#[allow(deprecated)] // the property under test IS the legacy-shim equivalence
fn builder_permutations_match_legacy_checker_config() {
    use avis::checker::{Checker, CheckerConfig};
    use avis::runner::ExperimentConfig;
    use avis_firmware::{BugSet, FirmwareProfile};
    use avis_workload::{auto_box_mission, manual_box_survey};

    let mut rng = SimRng::seed_from_u64(0xB1);
    for case in 0..3 {
        // Draw one random campaign configuration...
        let approach = Approach::ALL[rng.index(Approach::ALL.len())];
        let budget = Budget::simulations(4 + rng.index(3));
        let profiling_runs = 1 + rng.index(2);
        let parallelism = 1 + rng.index(3);
        let seed = 11 + rng.index(50) as u64;
        let workload = if rng.chance(0.5) {
            auto_box_mission()
        } else {
            manual_box_survey()
        };
        let profile = FirmwareProfile::ArduPilotLike;
        let bugs = BugSet::current_code_base(profile);

        // ...spell it the legacy way...
        let mut experiment = ExperimentConfig::new(profile, bugs.clone(), workload.clone());
        experiment.max_duration = 110.0;
        let mut config = CheckerConfig::new(approach, experiment, budget);
        config.profiling_runs = profiling_runs;
        config.parallelism = parallelism;
        config.seed = seed;
        let legacy = Checker::new(config).run();

        // ...and the fluent way, with the setters applied in a random
        // order (Fisher–Yates over the setter list).
        type Setter = Box<dyn FnOnce(CampaignBuilder) -> CampaignBuilder>;
        let wl = workload.clone();
        let bg = bugs.clone();
        let mut setters: Vec<Setter> = vec![
            Box::new(move |b| b.firmware(profile)),
            Box::new(move |b| b.bugs(bg)),
            Box::new(move |b| b.workload(wl)),
            Box::new(move |b| b.max_duration(110.0)),
            Box::new(move |b| b.approach(approach)),
            Box::new(move |b| b.budget(budget)),
            Box::new(move |b| b.profiling_runs(profiling_runs)),
            Box::new(move |b| b.parallelism(parallelism)),
            Box::new(move |b| b.seed(seed)),
        ];
        for i in (1..setters.len()).rev() {
            let j = rng.index(i + 1);
            setters.swap(i, j);
        }
        let mut builder = Campaign::builder();
        for setter in setters {
            builder = setter(builder);
        }
        let fluent = builder.build().run();

        assert_eq!(
            legacy, fluent,
            "case {case}: {approach} budget={budget:?} profiling={profiling_runs} \
             parallelism={parallelism} seed={seed} diverged between the legacy \
             config and a permuted builder"
        );
    }
}
