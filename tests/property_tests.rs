//! Property-based tests over the core data structures and invariants,
//! spanning the simulator math, the wire codec, fault plans and the
//! pruning signatures.

use avis::pruning::RoleSignature;
use avis_hinj::{FaultPlan, FaultSpec};
use avis_mavlite::{decode_frame, encode_frame, Message, MissionCommand, MissionItem, ProtocolMode};
use avis_sim::math::{wrap_angle, Quat, Vec3};
use avis_sim::{SensorInstance, SensorKind};
use proptest::prelude::*;

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (-1e3..1e3f64, -1e3..1e3f64, -1e3..1e3f64).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_sensor_kind() -> impl Strategy<Value = SensorKind> {
    prop_oneof![
        Just(SensorKind::Accelerometer),
        Just(SensorKind::Gyroscope),
        Just(SensorKind::Gps),
        Just(SensorKind::Barometer),
        Just(SensorKind::Compass),
        Just(SensorKind::Battery),
    ]
}

fn arb_instance() -> impl Strategy<Value = SensorInstance> {
    (arb_sensor_kind(), 0u8..3).prop_map(|(kind, index)| SensorInstance::new(kind, index))
}

fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    (arb_instance(), 0.0..200.0f64).prop_map(|(instance, time)| FaultSpec::new(instance, time))
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<bool>(), any::<bool>()).prop_map(|(armed, auto)| Message::Heartbeat {
            mode: if auto { ProtocolMode::Auto } else { ProtocolMode::Land },
            armed,
        }),
        (-500.0..500.0f64, -500.0..500.0f64, 0.0..120.0f64, -10.0..10.0f64, 0u16..20, any::<bool>())
            .prop_map(|(x, y, altitude, climb_rate, mission_seq, landed)| Message::Status {
                x,
                y,
                altitude,
                climb_rate,
                mission_seq,
                landed,
            }),
        any::<bool>().prop_map(|arm| Message::ArmDisarm { arm }),
        (0.0..100.0f64).prop_map(|altitude| Message::CommandTakeoff { altitude }),
        (-200.0..200.0f64, -200.0..200.0f64, 0.0..100.0f64)
            .prop_map(|(x, y, z)| Message::CommandGoto { x, y, z }),
        (0u16..100).prop_map(|count| Message::MissionCount { count }),
        (0u16..100).prop_map(|seq| Message::MissionRequest { seq }),
        (0u16..30, -100.0..100.0f64, -100.0..100.0f64, 1.0..60.0f64).prop_map(|(seq, x, y, z)| {
            Message::MissionItemMsg { item: MissionItem::new(seq, MissionCommand::Waypoint { x, y, z }) }
        }),
        any::<bool>().prop_map(|accepted| Message::MissionAck { accepted }),
        (0u8..8).prop_map(|severity| Message::StatusText { severity }),
    ]
}

proptest! {
    /// Rotating any vector by any attitude preserves its length.
    #[test]
    fn quaternion_rotation_preserves_norm(v in arb_vec3(), roll in -3.0..3.0f64, pitch in -1.5..1.5f64, yaw in -3.0..3.0f64) {
        let q = Quat::from_euler(roll, pitch, yaw);
        let rotated = q.rotate(v);
        prop_assert!((rotated.norm() - v.norm()).abs() < 1e-6);
        // Rotating back recovers the original vector.
        let back = q.rotate_inverse(rotated);
        prop_assert!(back.distance(v) < 1e-6);
    }

    /// Wrapped angles always land in (-pi, pi].
    #[test]
    fn wrap_angle_stays_in_range(angle in -1e4..1e4f64) {
        let wrapped = wrap_angle(angle);
        prop_assert!(wrapped > -std::f64::consts::PI - 1e-9);
        prop_assert!(wrapped <= std::f64::consts::PI + 1e-9);
        // Wrapping is idempotent.
        prop_assert!((wrap_angle(wrapped) - wrapped).abs() < 1e-9);
    }

    /// The triangle inequality holds for the Euclidean position distance
    /// used by the invariant monitor.
    #[test]
    fn position_distance_triangle_inequality(a in arb_vec3(), b in arb_vec3(), c in arb_vec3()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        prop_assert!(a.distance(b) >= 0.0);
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
    }

    /// Every MAVLite message survives an encode/decode round trip.
    #[test]
    fn mavlite_frames_round_trip(msg in arb_message(), seq in any::<u8>()) {
        let frame = encode_frame(&msg, seq);
        let (decoded, decoded_seq, used) = decode_frame(&frame).expect("well-formed frame");
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(decoded_seq, seq);
        prop_assert_eq!(used, frame.len());
    }

    /// Corrupting any single payload byte of a frame never yields a wrong
    /// message: decoding either fails or (for the rare case where the
    /// corrupted byte is outside the checksummed region boundary) returns
    /// the original message.
    #[test]
    fn mavlite_detects_single_byte_corruption(msg in arb_message(), flip in 1usize..64, bit in 0u8..8) {
        let frame = encode_frame(&msg, 7);
        let mut bytes = frame.to_vec();
        let idx = flip % bytes.len();
        if idx == 0 {
            // Corrupting the magic byte is always detected as BadMagic.
            bytes[0] ^= 1 << bit;
            prop_assert!(decode_frame(&bytes).is_err());
        } else {
            bytes[idx] ^= 1 << bit;
            match decode_frame(&bytes) {
                Err(_) => {}
                Ok((decoded, _, _)) => prop_assert_eq!(decoded, msg),
            }
        }
    }

    /// Fault plans are order-independent sets: building a plan from any
    /// permutation of the same specs yields the same canonical key, and a
    /// sensor never fails more than once.
    #[test]
    fn fault_plan_canonicalisation(specs in prop::collection::vec(arb_spec(), 0..8)) {
        let plan = FaultPlan::from_specs(specs.clone());
        let mut reversed = specs.clone();
        reversed.reverse();
        let plan_rev = FaultPlan::from_specs(reversed);
        prop_assert_eq!(plan.canonical_key(), plan_rev.canonical_key());
        // At most one failure per instance, at the earliest requested time.
        let distinct: std::collections::BTreeSet<_> = specs.iter().map(|s| s.instance).collect();
        prop_assert_eq!(plan.len(), distinct.len());
        for spec in &specs {
            let time = plan.failure_time(spec.instance).expect("instance scheduled");
            prop_assert!(time <= spec.time + 1e-9);
        }
        // The failure predicate is monotone in time.
        for spec in plan.specs() {
            prop_assert!(!plan.is_failed(spec.instance, spec.time - 0.001));
            prop_assert!(plan.is_failed(spec.instance, spec.time));
            prop_assert!(plan.is_failed(spec.instance, spec.time + 1000.0));
        }
    }

    /// Role signatures are invariant under backup-index renaming and a plan
    /// is always a subset of any plan that extends it.
    #[test]
    fn role_signature_symmetry_and_subsets(specs in prop::collection::vec(arb_spec(), 1..6), extra in arb_spec()) {
        let plan = FaultPlan::from_specs(specs.clone());
        // Rename backups: index 1 <-> 2 (index 0 stays primary).
        let renamed: Vec<FaultSpec> = specs
            .iter()
            .map(|s| {
                let index = match s.instance.index {
                    1 => 2,
                    2 => 1,
                    other => other,
                };
                FaultSpec::new(SensorInstance::new(s.instance.kind, index), s.time)
            })
            .collect();
        let renamed_plan = FaultPlan::from_specs(renamed);
        prop_assert_eq!(RoleSignature::of(&plan), RoleSignature::of(&renamed_plan));

        // Adding a failure of a *new* instance extends the plan, so the
        // original signature must be contained in the extended one. (When
        // `extra` re-schedules an instance already in the plan, the earlier
        // time wins and the original entry is replaced, so containment is
        // not expected.)
        if plan.failure_time(extra.instance).is_none() {
            let extended = plan.with(extra);
            prop_assert!(RoleSignature::of(&plan).is_subset_of(&RoleSignature::of(&extended)));
        }
    }
}
