//! Snapshot-fidelity property suite: for every layer that participates in
//! the checkpoint tree — the simulator, the firmware, the fault injector
//! and the full experiment runner — `snapshot → restore → step N` must be
//! bit-identical to `step N` straight through. Like the rest of the
//! property tests, randomness comes from a seeded [`SimRng`], so every
//! case is deterministic across runs.

use avis::runner::{ExperimentConfig, ExperimentRunner};
use avis::snapshot::{CheckpointConfig, SharedSnapshotTier};
use avis_firmware::{BugSet, Firmware, FirmwareProfile};
use avis_hinj::{FaultInjector, FaultPlan, FaultSpec, SharedInjector};
use avis_sim::simulator::{SimConfig, Simulator, StepOutput};
use avis_sim::{Environment, MotorCommands, SensorInstance, SensorKind, SensorNoise, SimRng};
use avis_workload::auto_box_mission;
use std::sync::Arc;

const DT: f64 = 0.0025;

fn arb_instance(rng: &mut SimRng) -> SensorInstance {
    let kind = SensorKind::ALL[rng.index(SensorKind::ALL.len())];
    SensorInstance::new(kind, rng.index(3) as u8)
}

fn arb_plan(rng: &mut SimRng, lo: f64, hi: f64) -> FaultPlan {
    let specs: Vec<FaultSpec> = (0..rng.index(3) + 1)
        .map(|_| FaultSpec::new(arb_instance(rng), rng.uniform_range(lo, hi)))
        .collect();
    FaultPlan::from_specs(specs)
}

#[test]
fn simulator_snapshot_restore_continues_bit_identically() {
    let mut rng = SimRng::seed_from_u64(41);
    for case in 0..5 {
        let seed = rng.index(1000) as u64;
        let cut = 200 + rng.index(1500);
        let total = cut + 500 + rng.index(1500);
        let throttles: Vec<f64> = (0..total).map(|_| rng.uniform_range(0.0, 0.9)).collect();

        let make = || {
            Simulator::new(
                SimConfig {
                    dt: DT,
                    seed,
                    ..SimConfig::default()
                },
                Environment::open_field(),
            )
        };
        // Straight-through reference.
        let mut straight = make();
        let mut reference = StepOutput::empty();
        for &t in &throttles {
            straight.step_into(&MotorCommands::uniform(t), &mut reference);
        }
        // Snapshot at `cut`, restore, continue.
        let mut recording = make();
        let mut output = StepOutput::empty();
        for &t in &throttles[..cut] {
            recording.step_into(&MotorCommands::uniform(t), &mut output);
        }
        let snapshot = recording.snapshot();
        assert_eq!(snapshot.time(), recording.time());
        assert!(snapshot.approx_bytes() > 0);
        let mut restored = snapshot.restore();
        for &t in &throttles[cut..] {
            restored.step_into(&MotorCommands::uniform(t), &mut output);
        }
        assert_eq!(output, reference, "case {case}: restored sim diverged");
        assert_eq!(restored.time(), straight.time());
        assert_eq!(restored.steps(), straight.steps());
        assert_eq!(restored.first_collision(), straight.first_collision());
    }
}

#[test]
fn injector_snapshot_restore_preserves_prefix_and_swaps_plan() {
    let mut rng = SimRng::seed_from_u64(43);
    for case in 0..50 {
        let prefix_fault = FaultSpec::new(arb_instance(&mut rng), rng.uniform_range(0.0, 5.0));
        let original = FaultPlan::from_specs(vec![prefix_fault]);
        let mut injector = FaultInjector::new(original);
        // Drive some reads and mode reports past the prefix fault.
        for i in 0..40 {
            let t = i as f64 * 0.25;
            injector.should_fail(prefix_fault.instance, t);
            injector.should_fail(arb_instance(&mut rng), t);
            if i % 10 == 0 {
                injector.report_mode(t, avis_hinj::ModeCode(i as u32 / 10));
            }
        }
        let snapshot = injector.snapshot();
        assert_eq!(snapshot.plan().len(), 1);
        assert!(snapshot.approx_bytes() > 0);

        // Restoring with a new plan keeps all bookkeeping and the prefix
        // failure (it fired; clean failures are permanent), while the new
        // plan governs future reads.
        let new_fault = FaultSpec::new(arb_instance(&mut rng), 20.0);
        let new_plan = FaultPlan::from_specs(vec![prefix_fault, new_fault]);
        let mut restored = snapshot.restore_with_plan(new_plan.clone());
        assert_eq!(restored.plan(), &new_plan);
        assert_eq!(
            restored.mode_transitions(),
            injector.mode_transitions(),
            "case {case}: prefix transitions lost"
        );
        assert_eq!(restored.injections(), injector.injections());
        assert_eq!(restored.total_reads(), injector.total_reads());
        assert!(restored.should_fail(prefix_fault.instance, 10.0));
        assert_eq!(
            restored.should_fail(new_fault.instance, 25.0),
            new_plan.is_failed(new_fault.instance, 25.0)
        );

        // The exact restore keeps the original plan.
        assert_eq!(snapshot.restore().plan(), injector.plan());
    }
}

#[test]
fn firmware_snapshot_restore_continues_bit_identically() {
    let mut rng = SimRng::seed_from_u64(47);
    for case in 0..3 {
        let plan = arb_plan(&mut rng, 5.0, 25.0);
        let cut_steps = (rng.uniform_range(8.0, 30.0) / DT) as usize;
        let total_steps = cut_steps + (20.0 / DT) as usize;

        let run_reference = |plan: FaultPlan| {
            let injector = SharedInjector::new(FaultInjector::new(plan));
            let mut fw = Firmware::new(
                FirmwareProfile::ArduPilotLike,
                BugSet::none(),
                injector.clone(),
            );
            let mut sim = make_sim(case as u64);
            let mut output = StepOutput::empty();
            sim.step_into(&MotorCommands::IDLE, &mut output);
            let mut commands = Vec::new();
            for step in 0..total_steps {
                drive_ground_station(&mut fw, step);
                let cmd = fw.step(&output.readings, sim.time(), DT);
                commands.push(cmd);
                sim.step_into(&cmd, &mut output);
            }
            (fw, sim, commands)
        };
        let (ref_fw, ref_sim, ref_commands) = run_reference(plan.clone());

        // Same lock-step loop, but snapshot firmware + sim + injector at
        // the cut and continue from the restored copies.
        let injector = SharedInjector::new(FaultInjector::new(plan));
        let mut fw = Firmware::new(
            FirmwareProfile::ArduPilotLike,
            BugSet::none(),
            injector.clone(),
        );
        let mut sim = make_sim(case as u64);
        let mut output = StepOutput::empty();
        sim.step_into(&MotorCommands::IDLE, &mut output);
        let mut commands = Vec::new();
        for step in 0..cut_steps {
            drive_ground_station(&mut fw, step);
            let cmd = fw.step(&output.readings, sim.time(), DT);
            commands.push(cmd);
            sim.step_into(&cmd, &mut output);
        }
        let fw_snapshot = fw.snapshot();
        assert!((fw_snapshot.time() - (sim.time() - DT)).abs() < 1e-9);
        assert!(fw_snapshot.approx_bytes() > 0);
        let restored_injector = SharedInjector::new(injector.snapshot().restore());
        let mut restored_fw = fw_snapshot.restore(restored_injector.clone());
        let mut restored_sim = sim.snapshot().into_restored();
        let mut restored_output = output.clone();
        for step in cut_steps..total_steps {
            drive_ground_station(&mut restored_fw, step);
            let cmd = restored_fw.step(&restored_output.readings, restored_sim.time(), DT);
            commands.push(cmd);
            restored_sim.step_into(&cmd, &mut restored_output);
        }

        assert_eq!(
            commands, ref_commands,
            "case {case}: motor commands diverged"
        );
        assert_eq!(restored_fw.mode(), ref_fw.mode());
        assert_eq!(restored_fw.mode_history(), ref_fw.mode_history());
        assert_eq!(restored_fw.estimate(), ref_fw.estimate());
        assert_eq!(restored_sim.physical_state(), ref_sim.physical_state());
        // The restored firmware reports to the *forked* injector, not the
        // recording one.
        assert_eq!(
            restored_injector.mode_transitions(),
            ref_sim_transitions(&ref_fw)
        );
    }
}

/// The reference run's transitions as recorded by its injector-facing
/// mode reports (mode history and injector reports coincide for these
/// runs).
fn ref_sim_transitions(fw: &Firmware) -> Vec<avis_hinj::ModeTransitionRecord> {
    let mut out = Vec::new();
    let mut prev: Option<avis_hinj::ModeCode> = None;
    for &(time, mode) in fw.mode_history() {
        let code = mode.code();
        if prev != Some(code) {
            out.push(avis_hinj::ModeTransitionRecord {
                time,
                from: prev,
                to: code,
            });
            prev = Some(code);
        }
    }
    out
}

fn make_sim(seed: u64) -> Simulator {
    let mut config = SimConfig {
        dt: DT,
        seed,
        ..SimConfig::default()
    };
    config.sensors.noise = SensorNoise::noiseless();
    Simulator::new(config, Environment::open_field())
}

/// A deterministic stand-in for the workload: arm, request takeoff, then
/// leave the firmware flying on its own.
fn drive_ground_station(fw: &mut Firmware, step: usize) {
    use avis_mavlite::Message;
    fw.drain_outbox();
    if step == (1.0 / DT) as usize {
        fw.handle_message(&Message::ArmDisarm { arm: true });
        fw.handle_message(&Message::CommandTakeoff { altitude: 18.0 });
    }
}

#[test]
fn runner_forks_are_bit_identical_across_random_plans() {
    let mut rng = SimRng::seed_from_u64(53);
    let mut experiment = ExperimentConfig::new(
        FirmwareProfile::ArduPilotLike,
        BugSet::current_code_base(FirmwareProfile::ArduPilotLike),
        auto_box_mission(),
    );
    experiment.noise = Some(SensorNoise::noiseless());
    experiment.max_duration = 100.0;

    let mut cold_experiment = experiment.clone();
    cold_experiment.checkpoints = CheckpointConfig::disabled();

    let mut checkpointed = ExperimentRunner::new(experiment);
    let mut cold = ExperimentRunner::new(cold_experiment);
    for case in 0..6 {
        // Plans biased late so most of them share long prefixes (and the
        // first iterations populate the tree the later ones fork from).
        let plan = arb_plan(&mut rng, 30.0, 90.0);
        let forked_result = checkpointed.run_with_plan(plan.clone());
        let cold_result = cold.run_with_plan(plan);
        assert_eq!(
            forked_result, cold_result,
            "case {case}: forked run diverged from cold execution"
        );
    }
    let stats = checkpointed.checkpoint_stats();
    assert!(
        stats.forked_runs >= 3,
        "late plans should fork off the shared prefix: {stats:?}"
    );
    assert!(stats.simulated_seconds_skipped > 0.0);
}

#[test]
fn forked_tail_mutation_never_perturbs_a_shared_prefix() {
    // The structural-sharing aliasing property, per CoW-backed layer:
    // a fork that keeps appending to (and sealing) its own history must
    // never change what an earlier snapshot observes.
    let mut rng = SimRng::seed_from_u64(59);
    for case in 0..30 {
        // Injector layer: records are CowVec-backed.
        let fault = FaultSpec::new(arb_instance(&mut rng), rng.uniform_range(0.0, 3.0));
        let mut injector = FaultInjector::new(FaultPlan::from_specs(vec![fault]));
        for i in 0..30 {
            let t = i as f64 * 0.5;
            injector.should_fail(fault.instance, t);
            if i % 7 == 0 {
                injector.report_mode(t, avis_hinj::ModeCode(i as u32));
            }
        }
        let snapshot = injector.snapshot();
        let injections_at_cut = snapshot.restore().injections().to_vec();
        let transitions_at_cut = snapshot.restore().mode_transitions().to_vec();
        // The original keeps running (its tail grows and reseals)…
        for i in 30..200 {
            let t = i as f64 * 0.5;
            injector.should_fail(arb_instance(&mut rng), t);
            injector.report_mode(t, avis_hinj::ModeCode(i as u32));
            if i % 13 == 0 {
                let _ = injector.snapshot(); // reseals the shared chain
            }
        }
        // …and the earlier snapshot must be byte-for-byte unchanged.
        assert_eq!(
            snapshot.restore().injections().to_vec(),
            injections_at_cut,
            "case {case}: injector prefix perturbed"
        );
        assert_eq!(
            snapshot.restore().mode_transitions().to_vec(),
            transitions_at_cut,
            "case {case}: transition prefix perturbed"
        );
    }
}

#[test]
fn firmware_defect_log_prefix_is_immutable_under_forks() {
    // Firmware layer: the defect log is CowVec-backed; a snapshot taken
    // mid-run must keep its log prefix while the recording run keeps
    // appending (the buggy code base logs an entry per active-defect
    // step, so the log actually grows).
    let bugs = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
    // Fail the primary accelerometer mid-climb (altitude > 2 m, still in
    // Takeoff): APM-16021 triggers and stays latched, so the defect log
    // grows every step from the trigger on.
    let fault = FaultSpec::new(SensorInstance::new(SensorKind::Accelerometer, 0), 5.0);
    let injector = SharedInjector::new(FaultInjector::new(FaultPlan::from_specs(vec![fault])));
    let mut fw = Firmware::new(FirmwareProfile::ArduPilotLike, bugs, injector.clone());
    let mut sim = make_sim(3);
    let mut output = StepOutput::empty();
    sim.step_into(&MotorCommands::IDLE, &mut output);
    for step in 0..(20.0 / DT) as usize {
        drive_ground_station(&mut fw, step);
        let cmd = fw.step(&output.readings, sim.time(), DT);
        sim.step_into(&cmd, &mut output);
    }
    let snapshot = fw.snapshot();
    let restored_injector = SharedInjector::new(injector.snapshot().restore());
    let log_at_cut = snapshot
        .restore(restored_injector.clone())
        .defect_log()
        .to_vec();
    // Continue the original for another 20 simulated seconds.
    for step in 0..(20.0 / DT) as usize {
        drive_ground_station(&mut fw, step + (20.0 / DT) as usize);
        let cmd = fw.step(&output.readings, sim.time(), DT);
        sim.step_into(&cmd, &mut output);
        if step % 4000 == 0 {
            let _ = fw.snapshot(); // reseals the shared chain
        }
    }
    assert!(
        fw.defect_log().len() > log_at_cut.len(),
        "the continued run should keep logging defects"
    );
    assert_eq!(
        snapshot.restore(restored_injector).defect_log().to_vec(),
        log_at_cut,
        "defect-log prefix perturbed by the continued run"
    );
}

#[test]
fn anchor_placement_raises_fork_depth_at_equal_memory_budget() {
    // Adaptive checkpoint placement: cuts at the golden run's mode
    // transitions (where SABRE anchors injections) must serve deeper
    // forks than the fixed 5 s interval alone, at the same memory
    // budget — measured through `checkpoint_stats()` as simulated
    // seconds skipped per fork — while every result stays bit-identical
    // to cold execution.
    let budget = 16 * 1024 * 1024;
    let mut base = ExperimentConfig::new(
        FirmwareProfile::ArduPilotLike,
        BugSet::none(),
        auto_box_mission(),
    );
    base.noise = Some(SensorNoise::noiseless());
    base.max_duration = 100.0;

    // Golden transitions from a profiling run (what a campaign feeds
    // `set_checkpoint_anchors` after calibration).
    let mut profiler = ExperimentRunner::new(base.clone());
    let golden = profiler.run_profiling(0);
    let anchors: Vec<f64> = golden
        .trace
        .transition_times()
        .into_iter()
        .filter(|&t| t > 0.0 && t < base.max_duration)
        .collect();
    assert!(anchors.len() >= 4, "the golden run has several transitions");

    // SABRE-style plans: single failures injected exactly at (a subset
    // of) the anchors — the regime anchor placement is built for.
    let instances = [
        SensorInstance::new(SensorKind::Gps, 1),
        SensorInstance::new(SensorKind::Barometer, 1),
    ];
    let mut plans = Vec::new();
    for &t in anchors.iter().skip(1) {
        for instance in instances {
            plans.push(FaultPlan::from_specs(vec![FaultSpec::new(instance, t)]));
        }
    }

    let run_all = |checkpoints: CheckpointConfig| {
        let mut experiment = base.clone();
        experiment.checkpoints = checkpoints;
        let mut runner = ExperimentRunner::new(experiment);
        let results: Vec<_> = plans
            .iter()
            .map(|p| runner.run_with_plan(p.clone()))
            .collect();
        (results, runner.checkpoint_stats())
    };

    let mut interval_only = CheckpointConfig::with_max_bytes(budget);
    interval_only.anchor_placement = false;
    let (interval_results, interval_stats) = run_all(interval_only);

    let mut anchored = CheckpointConfig::with_max_bytes(budget);
    anchored.anchors = anchors.clone();
    anchored.anchor_placement = false;
    let (anchored_results, anchored_stats) = run_all(anchored);

    assert_eq!(
        interval_results, anchored_results,
        "checkpoint placement must never change results"
    );
    assert!(interval_stats.forked_runs > 0 && anchored_stats.forked_runs > 0);
    let interval_depth =
        interval_stats.simulated_seconds_skipped / interval_stats.forked_runs as f64;
    let anchored_depth =
        anchored_stats.simulated_seconds_skipped / anchored_stats.forked_runs as f64;
    assert!(
        anchored_depth > interval_depth,
        "anchor placement should raise mean fork depth: anchored {anchored_depth:.2}s vs interval {interval_depth:.2}s \
         (anchored {anchored_stats:?}, interval {interval_stats:?})"
    );
}

#[test]
fn sim_delta_restore_is_bit_identical_to_full_restore() {
    // Layer property: `base.apply(&cut.diff(&base))` must rebuild the
    // exact capture, so a run resumed from the re-materialised snapshot
    // is bit-identical to one resumed from the full snapshot.
    let mut rng = SimRng::seed_from_u64(61);
    for case in 0..5 {
        let seed = rng.index(1000) as u64;
        let base_cut = 200 + rng.index(800);
        let delta_cut = base_cut + 100 + rng.index(800);
        let total = delta_cut + 400 + rng.index(800);
        let throttles: Vec<f64> = (0..total).map(|_| rng.uniform_range(0.0, 0.9)).collect();

        let mut sim = make_sim(seed);
        let mut output = StepOutput::empty();
        for &t in &throttles[..base_cut] {
            sim.step_into(&MotorCommands::uniform(t), &mut output);
        }
        let base = sim.snapshot();
        for &t in &throttles[base_cut..delta_cut] {
            sim.step_into(&MotorCommands::uniform(t), &mut output);
        }
        let cut = sim.snapshot();
        let delta = cut.diff(&base);
        assert!(
            delta.approx_bytes() < cut.approx_bytes() / 2,
            "case {case}: a sim delta should be a fraction of a full capture \
             ({} vs {})",
            delta.approx_bytes(),
            cut.approx_bytes()
        );
        assert_eq!(delta.time(), cut.time());

        let drive = |mut restored: Simulator| {
            let mut out = output.clone();
            for &t in &throttles[delta_cut..] {
                restored.step_into(&MotorCommands::uniform(t), &mut out);
            }
            (restored.physical_state(), restored.steps(), out)
        };
        let from_full = drive(cut.restore());
        let from_delta = drive(base.apply(&delta).into_restored());
        assert_eq!(
            from_delta, from_full,
            "case {case}: delta-restored sim diverged from the full restore"
        );
    }
}

#[test]
fn injector_delta_restore_is_bit_identical_to_full_restore() {
    let mut rng = SimRng::seed_from_u64(67);
    for case in 0..40 {
        let fault = FaultSpec::new(arb_instance(&mut rng), rng.uniform_range(0.0, 4.0));
        let mut injector = FaultInjector::new(FaultPlan::from_specs(vec![fault]));
        for i in 0..25 {
            let t = i as f64 * 0.4;
            injector.should_fail(fault.instance, t);
            if i % 6 == 0 {
                injector.report_mode(t, avis_hinj::ModeCode(i as u32));
            }
        }
        let base = injector.snapshot();
        for i in 25..60 {
            let t = i as f64 * 0.4;
            injector.should_fail(arb_instance(&mut rng), t);
            injector.report_mode(t, avis_hinj::ModeCode(i as u32));
        }
        let cut = injector.snapshot();
        let delta = cut.diff(&base);
        let rebuilt = base.apply(&delta);
        let (a, b) = (rebuilt.restore(), cut.restore());
        assert_eq!(a.plan(), b.plan(), "case {case}: plan diverged");
        assert_eq!(a.injections(), b.injections(), "case {case}");
        assert_eq!(a.mode_transitions(), b.mode_transitions(), "case {case}");
        assert_eq!(a.total_reads(), b.total_reads(), "case {case}");
        assert_eq!(a.failed_reads(), b.failed_reads(), "case {case}");
        assert_eq!(a.current_mode(), b.current_mode(), "case {case}");
    }
}

#[test]
fn firmware_delta_restore_is_bit_identical_to_full_restore() {
    let mut rng = SimRng::seed_from_u64(71);
    for case in 0..3 {
        let plan = arb_plan(&mut rng, 5.0, 25.0);
        let base_steps = (rng.uniform_range(6.0, 15.0) / DT) as usize;
        let delta_steps = base_steps + (rng.uniform_range(4.0, 12.0) / DT) as usize;
        let total_steps = delta_steps + (15.0 / DT) as usize;

        let injector = SharedInjector::new(FaultInjector::new(plan));
        let mut fw = Firmware::new(
            FirmwareProfile::ArduPilotLike,
            BugSet::current_code_base(FirmwareProfile::ArduPilotLike),
            injector.clone(),
        );
        let mut sim = make_sim(case as u64);
        let mut output = StepOutput::empty();
        sim.step_into(&MotorCommands::IDLE, &mut output);
        let mut base = None;
        let mut base_injector = None;
        for step in 0..delta_steps {
            if step == base_steps {
                base = Some(fw.snapshot());
                base_injector = Some(injector.snapshot());
            }
            drive_ground_station(&mut fw, step);
            let cmd = fw.step(&output.readings, sim.time(), DT);
            sim.step_into(&cmd, &mut output);
        }
        let base = base.expect("base cut recorded");
        let base_injector = base_injector.expect("base injector recorded");
        let cut = fw.snapshot();
        let cut_injector = injector.snapshot();
        let delta = cut.diff(&base);
        assert_eq!(delta.time(), cut.time());
        let injector_delta = cut_injector.diff(&base_injector);

        // Drive both restores through the identical tail and compare
        // every observable.
        let drive = |firmware_snapshot: &avis_firmware::FirmwareSnapshot,
                     injector_snapshot: &avis_hinj::InjectorSnapshot| {
            let shared = SharedInjector::new(injector_snapshot.restore());
            let mut fw = firmware_snapshot.restore(shared.clone());
            let mut sim = sim.snapshot().into_restored();
            let mut out = output.clone();
            let mut commands = Vec::new();
            for step in delta_steps..total_steps {
                drive_ground_station(&mut fw, step);
                let cmd = fw.step(&out.readings, sim.time(), DT);
                commands.push(cmd);
                sim.step_into(&cmd, &mut out);
            }
            (
                commands,
                fw.mode(),
                fw.mode_history().to_vec(),
                *fw.estimate(),
                fw.defect_log().to_vec(),
                shared.mode_transitions(),
            )
        };
        let from_full = drive(&cut, &cut_injector);
        let from_delta = drive(&base.apply(&delta), &base_injector.apply(&injector_delta));
        assert_eq!(
            from_delta, from_full,
            "case {case}: delta-restored firmware diverged from the full restore"
        );
    }
}

#[test]
fn keyframe_stride_never_changes_results() {
    // The runner-level property: cold execution, full-snapshot chains
    // (stride 1), delta chains (stride 3) and a stride far beyond any
    // chain length must all produce bit-identical results — and the
    // stride governs how cuts are *stored*: deltas appear exactly when
    // the stride leaves room for them.
    let gps1 = SensorInstance::new(SensorKind::Gps, 1);
    let baro1 = SensorInstance::new(SensorKind::Barometer, 1);
    let mut base = ExperimentConfig::new(
        FirmwareProfile::ArduPilotLike,
        BugSet::none(),
        auto_box_mission(),
    );
    base.noise = Some(SensorNoise::noiseless());
    base.max_duration = 100.0;

    let plans: Vec<FaultPlan> = [35.0, 50.0, 65.0, 80.0]
        .into_iter()
        .flat_map(|t| {
            [
                FaultPlan::from_specs(vec![FaultSpec::new(gps1, t)]),
                FaultPlan::from_specs(vec![FaultSpec::new(baro1, t + 2.0)]),
            ]
        })
        .collect();
    let run_all = |checkpoints: CheckpointConfig| {
        let mut experiment = base.clone();
        experiment.checkpoints = checkpoints;
        let mut runner = ExperimentRunner::new(experiment);
        let results: Vec<_> = plans
            .iter()
            .map(|p| runner.run_with_plan(p.clone()))
            .collect();
        (results, runner.checkpoint_stats())
    };

    let (cold, _) = run_all(CheckpointConfig::disabled());
    let (full, full_stats) = run_all(CheckpointConfig::with_keyframe_stride(1));
    let (delta, delta_stats) = run_all(CheckpointConfig::with_keyframe_stride(3));
    let (sparse, sparse_stats) = run_all(CheckpointConfig::with_keyframe_stride(1000));

    assert_eq!(full, cold, "stride-1 chains diverged from cold execution");
    assert_eq!(
        delta, cold,
        "stride-3 delta chains diverged from cold execution"
    );
    assert_eq!(
        sparse, cold,
        "stride > chain length diverged from cold execution"
    );
    assert_eq!(
        full_stats.delta_snapshots, 0,
        "stride 1 must store only keyframes: {full_stats:?}"
    );
    assert!(
        delta_stats.delta_snapshots > 0 && delta_stats.delta_bytes > 0,
        "stride 3 should store delta cuts: {delta_stats:?}"
    );
    // Stride 1000 exceeds every chain this workload records, so all but
    // each run's first recorded cut are deltas.
    assert!(
        sparse_stats.delta_snapshots > delta_stats.delta_snapshots,
        "an unbounded stride should delta-encode nearly every cut \
         (sparse {sparse_stats:?} vs stride-3 {delta_stats:?})"
    );
    // And the encoded stores hold the same number of cuts for less
    // memory.
    assert!(
        delta_stats.cached_bytes < full_stats.cached_bytes,
        "delta chains should be smaller at equal cut count: \
         {delta_stats:?} vs {full_stats:?}"
    );
}

#[test]
fn delta_chains_keep_more_cuts_resident_at_equal_budget() {
    // The memory-density property the dense-anchor bench measures at
    // full scale: under one tight budget, delta chains must keep several
    // times more cuts resident than full snapshots — here gated
    // conservatively at 2× (the bench asserts 3× with its denser anchor
    // set) — while results stay bit-identical to cold execution.
    let gps1 = SensorInstance::new(SensorKind::Gps, 1);
    let budget = 192 * 1024;
    let mut base = ExperimentConfig::new(
        FirmwareProfile::ArduPilotLike,
        BugSet::none(),
        auto_box_mission(),
    );
    base.noise = Some(SensorNoise::noiseless());
    base.max_duration = 100.0;

    let mut cold = ExperimentRunner::new({
        let mut e = base.clone();
        e.checkpoints = CheckpointConfig::disabled();
        e
    });
    let run_all = |keyframe_stride: usize, cold: &mut ExperimentRunner| {
        let mut experiment = base.clone();
        experiment.checkpoints = CheckpointConfig {
            interval: 1.0,
            max_bytes: budget,
            anchor_placement: false,
            keyframe_stride,
            ..CheckpointConfig::default()
        };
        let mut runner = ExperimentRunner::new(experiment);
        for time in [85.0, 90.0, 95.0] {
            let plan = FaultPlan::from_specs(vec![FaultSpec::new(gps1, time)]);
            let result = runner.run_with_plan(plan.clone());
            assert_eq!(
                result,
                cold.run_with_plan(plan),
                "stride {keyframe_stride}: budgeted run diverged from cold"
            );
        }
        runner.checkpoint_stats()
    };
    let full = run_all(1, &mut cold);
    let delta = run_all(16, &mut cold);
    assert!(full.cached_bytes <= budget && delta.cached_bytes <= budget);
    assert!(
        delta.snapshots_cached >= 2 * full.snapshots_cached,
        "delta chains should keep ≥2× more cuts resident at equal budget: \
         delta {delta:?} vs full {full:?}"
    );
}

#[test]
fn two_tier_eviction_under_tiny_budgets_stays_correct() {
    // Eviction correctness under the two-tier store: local caches and
    // the shared tier both squeezed to a budget that evicts on nearly
    // every publish must never change a result — a fork from whatever
    // survives is still bit-identical to a cold run.
    let gps1 = SensorInstance::new(SensorKind::Gps, 1);
    let mut experiment = ExperimentConfig::new(
        FirmwareProfile::ArduPilotLike,
        BugSet::none(),
        auto_box_mission(),
    );
    experiment.noise = Some(SensorNoise::noiseless());
    experiment.max_duration = 100.0;
    experiment.checkpoints = CheckpointConfig::with_max_bytes(96 * 1024);

    let mut cold_experiment = experiment.clone();
    cold_experiment.checkpoints = CheckpointConfig::disabled();
    let mut cold = ExperimentRunner::new(cold_experiment);

    let tier = Arc::new(SharedSnapshotTier::new(96 * 1024));
    // Two runners sharing the tiny tier, alternating runs: each records
    // into its own tiny cache and publishes into the shared tier.
    let mut a = ExperimentRunner::new(experiment.clone());
    a.set_shared_tier(Arc::clone(&tier));
    let mut b = ExperimentRunner::new(experiment);
    b.set_shared_tier(Arc::clone(&tier));

    for (i, time) in [30.0, 42.0, 55.0, 67.0, 80.0, 30.5].into_iter().enumerate() {
        let plan = FaultPlan::from_specs(vec![FaultSpec::new(gps1, time)]);
        tier.republish();
        let runner = if i % 2 == 0 { &mut a } else { &mut b };
        let result = runner.run_with_plan(plan.clone());
        let reference = cold.run_with_plan(plan);
        assert_eq!(
            result, reference,
            "run {i}: two-tier eviction changed the result"
        );
    }
    tier.republish();
    let stats = tier.stats();
    assert!(
        stats.evicted > 0,
        "the tiny tier budget should evict: {stats:?}"
    );
    assert!(
        stats.published_bytes <= 96 * 1024,
        "tier bytes over budget: {stats:?}"
    );
    let local = a.checkpoint_stats();
    assert!(
        local.snapshots_evicted > 0,
        "the tiny local budget should evict: {local:?}"
    );
}
