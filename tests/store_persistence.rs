//! Acceptance suite for the persistent snapshot store: a campaign that
//! warm-starts from chains a previous *process* persisted must be
//! bit-identical to a cold campaign — at parallelism 1 and 4, with and
//! without link faults — and two campaigns flushing into one store root
//! concurrently must never corrupt each other. Persistence is a
//! wall-clock optimisation only; every test here pins that it is
//! invisible in campaign observables.

use avis::campaign::{Campaign, CampaignEvent, EventLog};
use avis::checker::{Approach, Budget, CampaignResult};
use avis::matrix::ScenarioMatrix;
use avis::runner::ExperimentConfig;
use avis::snapshot::CheckpointConfig;
use avis_firmware::{BugId, BugSet, FirmwareProfile};
use avis_hinj::{LinkDirection, LinkFaultKind, LinkFaultPlan, LinkFaultSpec, StormCommand};
use avis_sim::SensorNoise;
use avis_workload::auto_box_mission;
use std::path::PathBuf;

fn experiment() -> ExperimentConfig {
    let bugs = BugSet::current_code_base(FirmwareProfile::ArduPilotLike);
    let mut experiment =
        ExperimentConfig::new(FirmwareProfile::ArduPilotLike, bugs, auto_box_mission());
    experiment.noise = Some(SensorNoise::default());
    experiment.max_duration = 110.0;
    experiment
}

fn temp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("avis-store-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn campaign(parallelism: usize, store: Option<&PathBuf>) -> (CampaignResult, Vec<CampaignEvent>) {
    let mut builder = Campaign::builder()
        .experiment(experiment())
        .approach(Approach::Avis)
        .budget(Budget::simulations(8))
        .profiling_runs(1)
        .parallelism(parallelism);
    if let Some(root) = store {
        builder = builder.snapshot_store(root.clone());
    }
    let mut log = EventLog::new();
    let result = builder.build().run_with_observer(&mut log);
    (result, log.into_events())
}

fn hydrated_chains(events: &[CampaignEvent]) -> u64 {
    events
        .iter()
        .find_map(|e| match e {
            CampaignEvent::StoreHydrated { chains, .. } => Some(*chains),
            _ => None,
        })
        .expect("a store-backed campaign emits StoreHydrated")
}

fn flushed_chains(events: &[CampaignEvent]) -> u64 {
    events
        .iter()
        .find_map(|e| match e {
            CampaignEvent::StoreFlushed { chains, .. } => Some(*chains),
            _ => None,
        })
        .expect("a store-backed campaign emits StoreFlushed")
}

#[test]
fn persisted_warm_campaign_is_bit_identical_to_cold() {
    // The headline acceptance: session 1 populates the store, session 2
    // hydrates from disk and forks from last session's chains — and both
    // produce exactly the cold result, at parallelism 1 and 4.
    let (cold, _) = campaign(1, None);
    assert!(
        !cold.unsafe_conditions.is_empty(),
        "the comparison should cover unsafe-condition bookkeeping"
    );
    for parallelism in [1, 4] {
        let root = temp_root(&format!("warm-p{parallelism}"));

        let (first, first_events) = campaign(parallelism, Some(&root));
        assert_eq!(
            cold, first,
            "store-backed first session (parallelism {parallelism}) \
             diverged from cold execution"
        );
        assert_eq!(
            hydrated_chains(&first_events),
            0,
            "an empty store hydrates nothing"
        );
        assert!(
            flushed_chains(&first_events) > 0,
            "the first session should persist its chains: {first_events:?}"
        );

        let (second, second_events) = campaign(parallelism, Some(&root));
        assert_eq!(
            cold, second,
            "persisted-warm session (parallelism {parallelism}) \
             diverged from cold execution"
        );
        assert!(
            hydrated_chains(&second_events) > 0,
            "the second session should warm-start from disk: {second_events:?}"
        );

        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn persisted_warm_link_fault_campaign_matches_cold() {
    // Same pin under a pinned link-fault environment: persisted chains
    // carry live link-shim state (rng stream, in-flight queues), so a
    // fork from a hydrated snapshot must replay the protocol defect
    // exactly as a cold run does.
    let arm_storm = || {
        LinkFaultPlan::from_specs(vec![LinkFaultSpec::new(
            LinkFaultKind::Storm {
                command: StormCommand::Arm,
                count: 8,
            },
            LinkDirection::ToVehicle,
            40.0,
        )])
    };
    let proto_experiment = || {
        let mut experiment = ExperimentConfig::new(
            FirmwareProfile::ArduPilotLike,
            BugSet::only(BugId::ProtoDoubleArm),
            auto_box_mission(),
        );
        experiment.noise = Some(SensorNoise::default());
        experiment.max_duration = 110.0;
        experiment
    };
    let run = |parallelism: usize, store: Option<&PathBuf>| {
        let mut builder = Campaign::builder()
            .experiment(proto_experiment())
            .approach(Approach::Avis)
            .link_faults(arm_storm())
            .budget(Budget::simulations(6))
            .profiling_runs(1)
            .parallelism(parallelism);
        if let Some(root) = store {
            builder = builder.snapshot_store(root.clone());
        }
        builder.build().run()
    };
    let cold = run(1, None);
    assert!(
        cold.bugs_found().contains(&BugId::ProtoDoubleArm),
        "the arm storm should reproduce PROTO-101: {:?}",
        cold.bugs_found()
    );
    for parallelism in [1, 4] {
        let root = temp_root(&format!("link-p{parallelism}"));
        let first = run(parallelism, Some(&root));
        assert_eq!(
            cold, first,
            "store-backed link-fault session (parallelism {parallelism}) \
             diverged from cold execution"
        );
        let warm = run(parallelism, Some(&root));
        assert_eq!(
            cold, warm,
            "persisted-warm link-fault session (parallelism {parallelism}) \
             diverged from cold execution"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn concurrent_campaigns_share_one_store_root_safely() {
    // Two campaigns over the same experiment flushing into one store
    // root at once: content-addressed blobs make racing writes
    // idempotent and the manifest merge is atomic (tmp + rename), so
    // both campaigns produce the cold result and the store stays fully
    // hydratable afterwards.
    let (cold, _) = campaign(1, None);
    let root = temp_root("concurrent");
    let (a, b) = std::thread::scope(|scope| {
        let root_a = root.clone();
        let root_b = root.clone();
        let ta = scope.spawn(move || campaign(2, Some(&root_a)).0);
        let tb = scope.spawn(move || campaign(2, Some(&root_b)).0);
        (
            ta.join().expect("campaign a"),
            tb.join().expect("campaign b"),
        )
    });
    assert_eq!(cold, a, "concurrent campaign A diverged from cold");
    assert_eq!(cold, b, "concurrent campaign B diverged from cold");

    // The store the two campaigns raced on still warm-starts a third,
    // and the third still reproduces the cold result.
    let (third, events) = campaign(1, Some(&root));
    assert_eq!(cold, third, "post-race warm session diverged from cold");
    assert!(
        hydrated_chains(&events) > 0,
        "the post-race store should still hydrate: {events:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn store_keys_experiments_apart_by_fingerprint() {
    // Two *different* experiments sharing one store root never see each
    // other's chains: each hydrates only from its own
    // fingerprint-keyed cell.
    let root = temp_root("fingerprint");
    let (_, first_events) = campaign(1, Some(&root));
    assert!(flushed_chains(&first_events) > 0);

    // A different bug set → different fingerprint → fresh cell.
    let mut other = experiment();
    other.bugs = BugSet::none();
    let mut log = EventLog::new();
    Campaign::builder()
        .experiment(other)
        .approach(Approach::Avis)
        .budget(Budget::simulations(4))
        .profiling_runs(1)
        .parallelism(1)
        .snapshot_store(root.clone())
        .build()
        .run_with_observer(&mut log);
    assert_eq!(
        hydrated_chains(log.events()),
        0,
        "a foreign experiment must not hydrate this experiment's chains"
    );
    // Two fingerprint cells now live under the root.
    let cells = std::fs::read_dir(&root).unwrap().count();
    assert_eq!(cells, 2, "each experiment gets its own store cell");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn matrix_with_persistent_store_reproduces_the_storeless_report() {
    // The ScenarioMatrix integration: a matrix re-run against a store
    // root warm-starts every firmware × workload cell from its own
    // fingerprint-keyed chains and still reproduces the storeless
    // report exactly.
    let run = |store: Option<&PathBuf>| {
        let mut matrix = ScenarioMatrix::new()
            .firmware(FirmwareProfile::ArduPilotLike)
            .workload(auto_box_mission())
            .approaches([Approach::Avis, Approach::Bfi])
            .budget(Budget::simulations(5))
            .profiling_runs(1)
            .parallelism(2)
            .max_duration(110.0)
            .noise(SensorNoise::default());
        if let Some(root) = store {
            matrix = matrix.snapshot_store(root.clone());
        }
        matrix.run()
    };
    let storeless = run(None);
    let root = temp_root("matrix");
    let first = run(Some(&root));
    assert_eq!(
        storeless, first,
        "store-backed matrix diverged from the storeless report"
    );
    let warm = run(Some(&root));
    assert_eq!(
        storeless, warm,
        "persisted-warm matrix diverged from the storeless report"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn store_survives_checkpointing_disabled() {
    // A store configured alongside disabled checkpointing is inert: no
    // tier exists, so no Store events fire and the campaign still
    // matches cold execution.
    let root = temp_root("disabled");
    let mut log = EventLog::new();
    let result = Campaign::builder()
        .experiment(experiment())
        .approach(Approach::Avis)
        .budget(Budget::simulations(6))
        .profiling_runs(1)
        .parallelism(1)
        .checkpoints(CheckpointConfig::disabled())
        .snapshot_store(root.clone())
        .build()
        .run_with_observer(&mut log);
    let cold = Campaign::builder()
        .experiment(experiment())
        .approach(Approach::Avis)
        .budget(Budget::simulations(6))
        .profiling_runs(1)
        .parallelism(1)
        .build()
        .run();
    assert_eq!(cold, result, "an inert store changed a campaign result");
    assert!(
        !log.events()
            .iter()
            .any(|e| matches!(e, CampaignEvent::StoreHydrated { .. })),
        "no tier, no hydration"
    );
    let _ = std::fs::remove_dir_all(&root);
}
