//! Integration test: the relative ordering of the four approaches under an
//! equal (small) budget reproduces the shape of the paper's Table III —
//! Avis finds at least as many unsafe conditions as Stratified BFI, which
//! finds more than vanilla BFI.

use avis::campaign::Campaign;
use avis::checker::{Approach, Budget};
use avis::metrics::unsafe_scenario_table;
use avis_firmware::{BugSet, FirmwareProfile};
use avis_workload::auto_box_mission;

fn run(approach: Approach, budget: Budget) -> avis::checker::CampaignResult {
    let profile = FirmwareProfile::ArduPilotLike;
    Campaign::builder()
        .firmware(profile)
        .bugs(BugSet::current_code_base(profile))
        .workload(auto_box_mission())
        .max_duration(110.0)
        .approach(approach)
        .budget(budget)
        .profiling_runs(2)
        .build()
        .run()
}

#[test]
fn table_iii_shape_holds_at_small_scale() {
    // Equal cost budget for every approach (seconds of simulated flight
    // plus modelled BFI labelling latency).
    let budget = Budget::seconds(2000.0);
    let avis = run(Approach::Avis, budget);
    let sbfi = run(Approach::StratifiedBfi, budget);
    let bfi = run(Approach::Bfi, budget);

    assert!(
        avis.unsafe_count() >= sbfi.unsafe_count(),
        "Avis ({}) should find at least as many unsafe conditions as Stratified BFI ({})",
        avis.unsafe_count(),
        sbfi.unsafe_count()
    );
    assert!(
        avis.unsafe_count() > bfi.unsafe_count(),
        "Avis ({}) should beat vanilla BFI ({})",
        avis.unsafe_count(),
        bfi.unsafe_count()
    );
    assert!(
        avis.unsafe_count() >= 1,
        "Avis should find something under this budget"
    );
    // BFI burns its budget on per-site labelling (the paper: it cannot even
    // cover one second of data).
    assert!(bfi.labels_evaluated > 0);
    assert_eq!(
        avis.labels_evaluated, 0,
        "Avis does not use a learned model"
    );

    // The metrics helper aggregates these into a Table III row set.
    let results = vec![avis.clone(), sbfi, bfi];
    let table = unsafe_scenario_table(&results);
    let avis_row = table.iter().find(|r| r.approach == Approach::Avis).unwrap();
    assert_eq!(avis_row.ardupilot, avis.unsafe_count());
    assert_eq!(avis_row.px4, 0);
}

#[test]
fn stratified_bfi_skips_joint_failures() {
    let budget = Budget::seconds(1500.0);
    let sbfi = run(Approach::StratifiedBfi, budget);
    for condition in &sbfi.unsafe_conditions {
        let kinds: std::collections::BTreeSet<_> =
            condition.plan.specs().map(|s| s.instance.kind).collect();
        assert!(
            kinds.len() <= 1,
            "Stratified BFI's model cannot predict joint failures, so it never runs them"
        );
    }
}
