//! Proves the zero-allocation property of the hot step loop: once the
//! reused buffers reach steady-state capacity, advancing the simulator
//! performs no heap allocations at all, and the full firmware-in-the-loop
//! step stays allocation-free outside the (rate-limited) telemetry path.
//!
//! A counting global allocator wraps the system allocator; the tests run
//! a warm-up phase, snapshot the allocation counter, run the measured
//! phase and compare.

// The workspace denies `unsafe_code`; a `GlobalAlloc` impl is the one
// place this test harness genuinely needs it.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Tracking only allocation events (not frees) is enough: the property
// under test is "no new allocations per step".
//
// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter update is a lock-free side effect
// with no memory-safety impact.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: delegates to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same contract as ours; layout passed through unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: delegates to `System.dealloc` with the caller's pointer/layout.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr was produced by `System.alloc` via our `alloc`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: delegates to `System.realloc` with the caller's arguments.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: ptr/layout come from a prior `System` allocation.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn simulator_step_loop_is_allocation_free_in_steady_state() {
    use avis_sim::simulator::{SimConfig, Simulator, StepOutput};
    use avis_sim::{Environment, Fence, FenceRegion, MotorCommands, Vec3};

    // Include a fence so the violated-fences path is exercised too.
    let env = Environment::open_field().with_fence(Fence::containment(FenceRegion::Circle {
        center: Vec3::ZERO,
        radius: 500.0,
    }));
    let mut sim = Simulator::new(SimConfig::default(), env);
    let mut output = StepOutput::empty();
    let climb = MotorCommands::uniform(0.8);

    // Warm-up: the readings/fences buffers grow to steady-state capacity.
    for _ in 0..1000 {
        sim.step_into(&climb, &mut output);
    }

    let before = allocations();
    for _ in 0..10_000 {
        sim.step_into(&climb, &mut output);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "the simulator step loop must not allocate once buffers are warm"
    );
}

#[test]
fn firmware_in_the_loop_step_is_allocation_free_between_telemetry_bursts() {
    use avis_firmware::{BugSet, Firmware, FirmwareProfile};
    use avis_hinj::SharedInjector;
    use avis_sim::simulator::{SimConfig, Simulator, StepOutput};
    use avis_sim::{Environment, MotorCommands};

    let dt = 0.0025;
    let mut sim = Simulator::new(
        SimConfig {
            dt,
            ..SimConfig::default()
        },
        Environment::open_field(),
    );
    let injector = SharedInjector::passthrough();
    let mut firmware = Firmware::new(FirmwareProfile::ArduPilotLike, BugSet::none(), injector);
    let mut output = StepOutput::empty();
    let mut telemetry = Vec::new();
    sim.step_into(&MotorCommands::IDLE, &mut output);

    let mut run = |steps: usize| {
        for _ in 0..steps {
            let time = sim.time();
            firmware.drain_outbox_into(&mut telemetry);
            let motor = firmware.step(&output.readings, time, dt);
            sim.step_into(&motor, &mut output);
        }
    };

    // Warm-up: buffers, outbox and failsafe/defect state reach steady
    // capacity (~5 simulated seconds).
    run(2000);

    let before = allocations();
    let steps = 20_000;
    run(steps);
    let grew = allocations() - before;
    // The disarmed control loop allocates only for rate-limited telemetry
    // formatting, if anything; it must be far below one allocation per
    // step. (The strict zero bound lives on the simulator loop above.)
    assert!(
        (grew as f64) < steps as f64 * 0.01,
        "firmware loop allocated {grew} times over {steps} steps"
    );
}
