//! Offline stand-in for the `bytes` crate.
//!
//! Implements just the surface the MAVLite codec uses: a growable
//! [`BytesMut`] with big-endian `put_*` writers, an immutable [`Bytes`]
//! cursor with matching `get_*` readers, and the [`Buf`]/[`BufMut`]
//! traits those methods live on. Backed by plain `Vec<u8>` — no
//! zero-copy sharing, which this workspace never relies on.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Read side: a cursor over immutable bytes (big-endian decode).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u16`, advancing the cursor.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian `f64`, advancing the cursor.
    fn get_f64(&mut self) -> f64;
}

/// Write side: appends big-endian encoded values.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64);
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been read.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let start = self.pos;
        assert!(start + n <= self.data.len(), "advance past end of Bytes");
        self.pos += n;
        &self.data[start..self.pos]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16(&mut self) -> u16 {
        let b = self.take(2);
        u16::from_be_bytes([b[0], b[1]])
    }

    fn get_f64(&mut self) -> f64 {
        let b = self.take(8);
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        f64::from_be_bytes(buf)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_values() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_f64(-12.5);
        assert_eq!(buf.len(), 11);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 11);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16(), 0xBEEF);
        assert_eq!(bytes.get_f64(), -12.5);
        assert!(bytes.is_empty());
    }

    #[test]
    fn deref_tracks_cursor() {
        let mut bytes = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(&bytes[..], &[1, 2, 3, 4]);
        bytes.get_u8();
        assert_eq!(&bytes[..], &[2, 3, 4]);
        assert_eq!(bytes.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn reading_past_end_panics() {
        let mut bytes = Bytes::copy_from_slice(&[1]);
        bytes.get_u16();
    }
}
