//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so the real statistical
//! harness cannot be fetched. This stub keeps the API shape the
//! workspace's benches use (`Criterion`, `bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros) and performs a simple
//! wall-clock measurement: warm up once, then run batches until a time
//! budget is spent, reporting the median batch ns/iter on stdout.
//!
//! It is *not* statistically rigorous — it exists so `cargo bench`
//! compiles, runs and prints comparable numbers on this machine.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark (after one warm-up call).
const DEFAULT_BUDGET: Duration = Duration::from_millis(300);
/// Batches the budget is split into (the median batch is reported).
const BATCHES: usize = 5;

/// Passed to the closure under `iter`; times the measured routine.
pub struct Bencher {
    iters_per_batch: Option<u64>,
    samples: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters_per_batch: None,
            samples: Vec::new(),
            total_iters: 0,
        }
    }

    /// Measures the closure: one warm-up call sizes the batches, then
    /// `BATCHES` timed batches fill the time budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + batch sizing.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (DEFAULT_BUDGET.as_nanos() / BATCHES as u128 / once.as_nanos()).max(1);
        let per_batch = per_batch.min(u64::MAX as u128) as u64;
        self.iters_per_batch = Some(per_batch);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.total_iters += per_batch;
            self.samples
                .push(elapsed.as_nanos() as f64 / per_batch as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (not measured)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "{name:<44} {:>14} ns/iter (min {:.0}, max {:.0}, {} iters)",
            format_ns(median),
            lo,
            hi,
            self.total_iters
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.1}")
    }
}

/// Identifies a parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (accepted and ignored by the stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}:");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted and ignored by the stub).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted and ignored by the stub).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        bencher.report(&format!("{}/{name}", self.group));
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new();
        f(&mut bencher, input);
        bencher.report(&format!("{}/{id}", self.group));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default().configure_from_args();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
