//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s non-poisoning `lock()`
//! API so the rest of the workspace compiles unchanged without crates.io
//! access. Poisoned locks are recovered rather than propagated, matching
//! `parking_lot`'s behaviour of not poisoning at all.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::MutexGuard;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock`, never returns an error: a poisoned lock
    /// is recovered.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
