//! Offline stand-in for `serde`.
//!
//! The container this repository builds in has no crates.io access, so
//! the real `serde` cannot be used. The workspace treats `Serialize` /
//! `Deserialize` purely as markers — every format that actually leaves
//! the process (bug reports, bench result files) is produced by the
//! hand-rolled JSON layer in `avis::json`. The traits here are therefore
//! empty, and the derives (re-exported from the sibling `serde_derive`
//! stub) expand to nothing.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
