//! Offline stand-in for `serde_derive`.
//!
//! The build environment for this repository has no network access to
//! crates.io, so the real `serde` stack cannot be fetched. The workspace
//! only uses `#[derive(Serialize, Deserialize)]` as markers (all actual
//! persistence goes through the hand-rolled JSON layer in
//! `avis::json`), so these derives expand to nothing. The `serde` helper
//! attribute is registered so existing `#[serde(...)]` annotations keep
//! compiling.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts (and ignores) `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
